#include "core/verification.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/check.hpp"
#include "obs/obs.hpp"
#include "stats/sampler.hpp"

namespace mayo::core {

using linalg::DesignVec;
using linalg::Matrixd;
using linalg::MatrixView;
using linalg::OperatingVec;
using linalg::Vector;

namespace detail {

BlockVerifier::BlockVerifier(Evaluator& evaluator,
                             const CornerGrouping& grouping,
                             std::size_t block_size)
    : evaluator_(evaluator), grouping_(grouping) {
  const std::size_t num_specs = evaluator.num_specs();
  corner_values_.reserve(grouping.distinct.size());
  for (std::size_t g = 0; g < grouping.distinct.size(); ++g)
    corner_values_.emplace_back(std::max<std::size_t>(block_size, 1),
                                num_specs);
  fails_per_spec_.assign(num_specs, 0);
  perf_stats_.resize(num_specs);
}

void BlockVerifier::run_block(const DesignVec& d,
                              const stats::SampleSet& samples,
                              std::size_t first, std::size_t count,
                              std::vector<std::uint8_t>* sample_pass) {
  if (count == 0) return;
  const std::size_t num_specs = evaluator_.num_specs();
  const linalg::StatUnitBlock block = samples.block(first, count);
  // Corner-major evaluation: one batch call per distinct operating corner
  // (eq. 6-7; evaluations shared between specs of a corner group).
  for (std::size_t g = 0; g < grouping_.distinct.size(); ++g) {
    Matrixd& values = corner_values_[g];
    if (values.rows() < count)
      values = Matrixd(count, num_specs);  // hot-ok: grow-only, reused
    evaluator_.performances_batch(
        d, block, grouping_.distinct[g],
        linalg::PerfBlockView(MatrixView(values).middle_rows(0, count)), ws_,
        Budget::kVerification);
  }
  // Accumulation stays sample-major in ascending order so the running
  // statistics fold values in exactly the scalar loop's sequence.
  const auto& specs = evaluator_.problem().specs;
  for (std::size_t r = 0; r < count; ++r) {
    bool pass = true;
    for (std::size_t i = 0; i < num_specs; ++i) {
      const double value = corner_values_[grouping_.group_of_spec[i]](r, i);
      MAYO_CHECK_FINITE(value, "monte_carlo_verify: performance sample");
      perf_stats_[i].add(value);
      if (specs[i].margin(value) < 0.0) {
        ++fails_per_spec_[i];
        pass = false;
      }
    }
    passing_ += pass ? 1 : 0;
    if (sample_pass != nullptr) (*sample_pass)[first + r] = pass ? 1 : 0;
  }
  obs::Counters& tallies = obs::registry().counters;
  tallies.mc_blocks.add();
  tallies.mc_samples.add(count);
}

}  // namespace detail

CornerGrouping group_corners(const std::vector<OperatingVec>& theta_wc) {
  CornerGrouping grouping;
  grouping.group_of_spec.resize(theta_wc.size());
  for (std::size_t i = 0; i < theta_wc.size(); ++i) {
    bool found = false;
    for (std::size_t g = 0; g < grouping.distinct.size(); ++g) {
      if (grouping.distinct[g] == theta_wc[i]) {
        grouping.group_of_spec[i] = g;
        found = true;
        break;
      }
    }
    if (!found) {
      grouping.group_of_spec[i] = grouping.distinct.size();
      grouping.distinct.push_back(theta_wc[i]);
    }
  }
  return grouping;
}

VerificationResult monte_carlo_verify(
    Evaluator& evaluator, const DesignVec& d,
    const std::vector<OperatingVec>& theta_wc,
    const VerificationOptions& options) {
  const std::size_t num_specs = evaluator.num_specs();
  if (theta_wc.size() != num_specs)
    throw std::invalid_argument("monte_carlo_verify: theta_wc size mismatch");
  if (options.num_samples == 0)
    throw std::invalid_argument(
        "monte_carlo_verify: num_samples must be positive (a zero-sample "
        "run has no yield estimate and would divide by zero)");
  const obs::Span span(obs::registry().phases.verification);

  const CornerGrouping grouping = group_corners(theta_wc);

  const stats::SampleSet samples(options.num_samples,
                                 evaluator.num_statistical(), options.seed);

  VerificationResult result;
  if (options.record_decisions) result.sample_pass.assign(samples.count(), 0);
  const std::size_t evals_before = evaluator.counts().verification;

  const std::size_t block_size = std::max<std::size_t>(options.block_size, 1);
  detail::BlockVerifier verifier(evaluator, grouping, block_size);
  for (std::size_t first = 0; first < samples.count(); first += block_size) {
    const std::size_t count = std::min(block_size, samples.count() - first);
    verifier.run_block(d, samples, first, count,
                       options.record_decisions ? &result.sample_pass
                                                : nullptr);
  }

  result.fails_per_spec = verifier.fails_per_spec();
  const std::size_t passing = verifier.passing();
  result.yield = static_cast<double>(passing) / samples.count();
  result.confidence = stats::yield_confidence(passing, samples.count());
  result.performance_mean.resize(num_specs);
  result.performance_stddev.resize(num_specs);
  for (std::size_t i = 0; i < num_specs; ++i) {
    result.performance_mean[i] = verifier.perf_stats()[i].mean();
    result.performance_stddev[i] = verifier.perf_stats()[i].stddev();
  }
  result.evaluations = evaluator.counts().verification - evals_before;
  return result;
}

}  // namespace mayo::core
