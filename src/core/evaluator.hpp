// mayo/core -- counting, caching evaluator with the s_hat transform.
//
// All algorithm layers access the performance model exclusively through
// this class.  It
//   * applies the variable-covariance transform s = G(d) s_hat + s0 of
//     paper eq. (11), so callers work in standard-normal s_hat coordinates
//     and the design-dependence of C(d) is folded into the performance
//     function f_hat (eq. 12-14),
//   * converts performance values to specification margins,
//   * memoizes evaluations (bitwise-identical arguments), so repeated
//     probes of the same point -- nominal margins, worst-case starts,
//     mismatch analysis reusing worst-case points -- cost nothing, and
//   * counts true model evaluations, split into optimization and
//     verification budgets (paper Table 7).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/problem.hpp"
#include "linalg/vector.hpp"

namespace mayo::core {

/// Simulation counters (one count per PerformanceModel::evaluate call).
struct EvaluationCounts {
  std::size_t optimization = 0;  ///< evaluations charged to the optimizer
  std::size_t verification = 0;  ///< evaluations charged to MC verification
  std::size_t constraint = 0;    ///< constraint evaluations c(d)
  std::size_t cache_hits = 0;
  std::size_t total() const { return optimization + verification + constraint; }
};

/// Budget a model evaluation is charged to.
enum class Budget { kOptimization, kVerification };

class Evaluator {
 public:
  /// The problem must outlive the evaluator.  Throws via validate().
  explicit Evaluator(YieldProblem& problem);

  const YieldProblem& problem() const { return problem_; }
  std::size_t num_specs() const { return problem_.specs.size(); }
  std::size_t num_statistical() const { return problem_.statistical.dimension(); }
  std::size_t num_design() const { return problem_.design.dimension(); }
  std::size_t num_operating() const { return problem_.operating.dimension(); }

  /// Raw performance values f_hat(d, s_hat, theta) (eq. 14).
  linalg::Vector performances(const linalg::Vector& d,
                              const linalg::Vector& s_hat,
                              const linalg::Vector& theta,
                              Budget budget = Budget::kOptimization);

  /// All specification margins at (d, s_hat, theta).
  linalg::Vector margins(const linalg::Vector& d, const linalg::Vector& s_hat,
                         const linalg::Vector& theta,
                         Budget budget = Budget::kOptimization);

  /// Margin of one specification.
  double margin(std::size_t spec, const linalg::Vector& d,
                const linalg::Vector& s_hat, const linalg::Vector& theta,
                Budget budget = Budget::kOptimization);

  /// Functional constraint values c(d) (cached like performances).
  linalg::Vector constraints(const linalg::Vector& d);

  /// Gradient of one spec's margin w.r.t. s_hat (forward differences,
  /// reusing the base evaluation; n_s extra evaluations).
  linalg::Vector margin_gradient_s(std::size_t spec, const linalg::Vector& d,
                                   const linalg::Vector& s_hat,
                                   const linalg::Vector& theta,
                                   double step = 5e-2);

  /// Gradients of ALL specs' margins w.r.t. s_hat in one pass (shares the
  /// finite-difference evaluations across specs).  Row i = spec i.
  linalg::Matrixd margin_gradients_s(const linalg::Vector& d,
                                     const linalg::Vector& s_hat,
                                     const linalg::Vector& theta,
                                     double step = 5e-2);

  /// Gradient of one spec's margin w.r.t. d.  Steps are relative to the
  /// design-space ranges (step_fraction * (upper - lower)).
  linalg::Vector margin_gradient_d(std::size_t spec, const linalg::Vector& d,
                                   const linalg::Vector& s_hat,
                                   const linalg::Vector& theta,
                                   double step_fraction = 1e-3);

  /// Jacobian of the constraints w.r.t. d (forward differences).
  linalg::Matrixd constraint_jacobian(const linalg::Vector& d,
                                      double step_fraction = 1e-3);

  /// Zero vector in s_hat space (the nominal statistical point).
  linalg::Vector nominal_s_hat() const {
    return linalg::Vector(num_statistical());
  }
  /// Nominal operating point.
  const linalg::Vector& nominal_theta() const {
    return problem_.operating.nominal;
  }

  const EvaluationCounts& counts() const { return counts_; }
  void reset_counts() { counts_ = {}; }
  /// Adds externally performed evaluations (e.g. parallel workers) to the
  /// verification counter so budget reports stay complete.
  void charge_verification(std::size_t evaluations) {
    counts_.verification += evaluations;
  }
  /// Drops all memoized results (use between experiments).
  void clear_cache();

 private:
  linalg::Vector evaluate_physical(const linalg::Vector& d,
                                   const linalg::Vector& s_hat,
                                   const linalg::Vector& theta, Budget budget);

  YieldProblem& problem_;
  EvaluationCounts counts_;
  std::unordered_map<std::uint64_t, std::vector<std::pair<std::vector<double>, linalg::Vector>>>
      cache_;
  std::unordered_map<std::uint64_t, std::vector<std::pair<std::vector<double>, linalg::Vector>>>
      constraint_cache_;
};

}  // namespace mayo::core
