// mayo/core -- counting, caching evaluator with the s_hat transform.
//
// All algorithm layers access the performance model exclusively through
// this class.  It
//   * applies the variable-covariance transform s = G(d) s_hat + s0 of
//     paper eq. (11), so callers work in standard-normal s_hat coordinates
//     and the design-dependence of C(d) is folded into the performance
//     function f_hat (eq. 12-14),
//   * converts performance values to specification margins,
//   * memoizes evaluations (bitwise-identical arguments), so repeated
//     probes of the same point -- nominal margins, worst-case starts,
//     mismatch analysis reusing worst-case points -- cost nothing, and
//   * counts true model evaluations, split into optimization and
//     verification budgets (paper Table 7).
//
// Batch path: performances_batch / margins_batch evaluate a whole block of
// s_hat rows through one PerformanceModel::evaluate_batch call, applying
// the covariance transform block-wise and reusing caller-owned workspace so
// the hot path performs no per-sample heap allocation.  Cache and counter
// semantics are identical to the scalar loop: every row is probed against
// the cache, duplicate rows within a block count as cache hits and are
// simulated once, and every distinct miss is charged to the given budget.
//
// Purity contract: a model evaluation must be a pure function of
// (d, s, theta).  Models may keep reusable state -- per-(d, theta) design
// contexts with warm-start seeds, the stamp-once AC session of
// sim::AcSession, the in-place LU workspaces of the Newton loops -- but
// all of it is either a pure function of the arguments or pure cost
// (buffers that are fully rewritten before use).  That is what lets the
// cache, the batch spine and the parallel map return bitwise-identical
// results regardless of evaluation order, block size or thread count.
#pragma once

#include <cstddef>
#include <vector>

#include "core/probe_cache.hpp"
#include "core/problem.hpp"
#include "linalg/matrix.hpp"
#include "linalg/spaces.hpp"
#include "linalg/vector.hpp"

namespace mayo::core {

/// Simulation counters (one count per PerformanceModel::evaluate call).
struct EvaluationCounts {
  std::size_t optimization = 0;  ///< evaluations charged to the optimizer
  std::size_t verification = 0;  ///< evaluations charged to MC verification
  std::size_t constraint = 0;    ///< constraint evaluations c(d)
  std::size_t cache_hits = 0;
  std::size_t total() const { return optimization + verification + constraint; }
};

/// Budget a model evaluation is charged to.
enum class Budget { kOptimization, kVerification };

/// Cache tuning knobs (defaults reproduce the historical behaviour:
/// unbounded memoization with FNV-1a hashing).  `hash` is injectable for
/// collision regression tests; `capacity` bounds the evaluation cache with
/// deterministic FIFO eviction (0 = unlimited).
struct CacheOptions {
  std::size_t capacity = 0;
  ProbeCache::HashFn hash = nullptr;
};

/// Caller-owned scratch for the batch evaluation path.  Buffers grow on
/// first use and are reused across blocks; after warm-up a batch call
/// performs no heap allocation.  A workspace is not thread-safe: use one
/// per worker (alongside its Evaluator).
struct EvalWorkspace {
  linalg::Matrixd s_hat_miss;  ///< distinct cache-miss rows, s_hat space
  linalg::Matrixd physical;    ///< the same rows after s = G(d) s_hat + s0
  linalg::Matrixd values;      ///< model performances for the miss rows
  linalg::Vector sigma;        ///< sigma(d) scratch for to_physical_block
  ProbeCache::Key key;         ///< reusable key-building buffer
  std::vector<ProbeCache::Key> miss_keys;   ///< keys of distinct misses
  std::vector<std::size_t> miss_rows;       ///< block row of each miss
  std::vector<std::ptrdiff_t> row_source;   ///< per block row: -1 = served
                                            ///< from cache, else miss index
};

class Evaluator {
 public:
  /// The problem must outlive the evaluator.  Throws via validate().
  explicit Evaluator(YieldProblem& problem);
  Evaluator(YieldProblem& problem, const CacheOptions& cache);

  const YieldProblem& problem() const { return problem_; }
  std::size_t num_specs() const { return problem_.specs.size(); }
  std::size_t num_statistical() const { return problem_.statistical.dimension(); }
  std::size_t num_design() const { return problem_.design.dimension(); }
  std::size_t num_operating() const { return problem_.operating.dimension(); }

  /// Raw performance values f_hat(d, s_hat, theta) (eq. 14).
  linalg::PerfVec performances(const linalg::DesignVec& d,
                               const linalg::StatUnitVec& s_hat,
                               const linalg::OperatingVec& theta,
                               Budget budget = Budget::kOptimization);

  /// All specification margins at (d, s_hat, theta).
  linalg::MarginVec margins(const linalg::DesignVec& d,
                            const linalg::StatUnitVec& s_hat,
                            const linalg::OperatingVec& theta,
                            Budget budget = Budget::kOptimization);

  /// Margin of one specification.
  double margin(std::size_t spec, const linalg::DesignVec& d,
                const linalg::StatUnitVec& s_hat,
                const linalg::OperatingVec& theta,
                Budget budget = Budget::kOptimization);

  /// Batch form of performances(): row j of `out` receives
  /// f_hat(d, s_hat_block.row(j), theta).  `out` must be
  /// s_hat_block.rows() x num_specs().  Results, cache contents and
  /// counters end up exactly as if the rows had been evaluated one by one
  /// through performances() in ascending row order.
  void performances_batch(const linalg::DesignVec& d,
                          linalg::StatUnitBlock s_hat_block,
                          const linalg::OperatingVec& theta,
                          linalg::PerfBlockView out, EvalWorkspace& ws,
                          Budget budget = Budget::kOptimization);

  /// Batch form of margins(): performances_batch followed by the in-place
  /// per-spec margin transform of every row.
  void margins_batch(const linalg::DesignVec& d,
                     linalg::StatUnitBlock s_hat_block,
                     const linalg::OperatingVec& theta,
                     linalg::MarginBlockView out, EvalWorkspace& ws,
                     Budget budget = Budget::kOptimization);

  /// Functional constraint values c(d) (cached like performances).
  linalg::Vector constraints(const linalg::DesignVec& d);

  /// Gradient of one spec's margin w.r.t. s_hat (forward differences,
  /// reusing the base evaluation; n_s extra evaluations).  A gradient
  /// w.r.t. s_hat is itself a direction in StatUnit space.
  linalg::StatUnitVec margin_gradient_s(std::size_t spec,
                                        const linalg::DesignVec& d,
                                        const linalg::StatUnitVec& s_hat,
                                        const linalg::OperatingVec& theta,
                                        double step = 5e-2);

  /// Gradients of ALL specs' margins w.r.t. s_hat in one pass (shares the
  /// finite-difference evaluations across specs; the base point and the
  /// n_s forward probes run as one batch).  Row i = spec i (each row a
  /// StatUnit direction; returned untyped for linalg interop).
  linalg::Matrixd margin_gradients_s(const linalg::DesignVec& d,
                                     const linalg::StatUnitVec& s_hat,
                                     const linalg::OperatingVec& theta,
                                     double step = 5e-2);

  /// Gradient of one spec's margin w.r.t. d.  Steps are relative to the
  /// design-space ranges (step_fraction * (upper - lower)).
  linalg::DesignVec margin_gradient_d(std::size_t spec,
                                      const linalg::DesignVec& d,
                                      const linalg::StatUnitVec& s_hat,
                                      const linalg::OperatingVec& theta,
                                      double step_fraction = 1e-3);

  /// Jacobian of the constraints w.r.t. d (forward differences).
  linalg::Matrixd constraint_jacobian(const linalg::DesignVec& d,
                                      double step_fraction = 1e-3);

  /// Zero vector in s_hat space (the nominal statistical point).  With the
  /// sampler, one of the two places allowed to mint StatUnit values.
  linalg::StatUnitVec nominal_s_hat() const {
    return linalg::StatUnitVec(num_statistical());
  }
  /// Nominal operating point.
  linalg::OperatingVec nominal_theta() const {
    return linalg::OperatingVec(problem_.operating.nominal);
  }

  const EvaluationCounts& counts() const { return counts_; }
  void reset_counts() { counts_ = {}; }
  /// Adds externally performed evaluations (e.g. parallel workers) to the
  /// verification counter so budget reports stay complete.
  void charge_verification(std::size_t evaluations) {
    counts_.verification += evaluations;
  }
  /// Same for the optimization budget (parallel worst-case searches).
  void charge_optimization(std::size_t evaluations) {
    counts_.optimization += evaluations;
  }
  /// Number of memoized evaluation results currently held.
  std::size_t cache_size() const { return cache_.size(); }
  /// Drops all memoized results (use between experiments).
  void clear_cache();

 private:
  linalg::Vector evaluate_physical(const linalg::DesignVec& d,
                                   const linalg::StatUnitVec& s_hat,
                                   const linalg::OperatingVec& theta,
                                   Budget budget);
  void validate_point(const linalg::DesignVec& d,
                      const linalg::OperatingVec& theta,
                      std::size_t s_hat_size) const;

  YieldProblem& problem_;
  EvaluationCounts counts_;
  ProbeCache cache_;
  ProbeCache constraint_cache_;  ///< keyed by d alone; always unbounded
  ProbeCache::Key scalar_key_;   ///< scratch for the scalar probe path
  // Workspace for the shared finite-difference block in
  // margin_gradients_s (base row + n_s probe rows).
  EvalWorkspace grad_ws_;
  linalg::Matrixd grad_points_;
  linalg::Matrixd grad_margins_;
};

}  // namespace mayo::core
