// mayo/core -- feasibility-guided coordinate search (paper eq. 19).
//
// Maximizes the linear-model yield estimate over the design parameters,
// one coordinate at a time.  Every move is restricted to the alpha
// interval allowed by the linearized functional constraints (eq. 15)
// intersected with the design box; within that interval the exact 1-D
// maximizer of LinearYieldModel::best_alpha is used.  Sweeps repeat until
// no coordinate improves the pass count.
//
// The paper motivates coordinate search over gradient methods: the yield
// estimate is a Monte-Carlo step function (no useful gradient), zero over
// large parts of the design space, and strongly non-monotonic (Fig. 5).
#pragma once

#include <functional>

#include "core/feasibility.hpp"
#include "core/yield_model.hpp"

namespace mayo::core {

struct CoordinateSearchOptions {
  int max_sweeps = 25;  ///< full passes over all coordinates
  /// Minimum fraction of the box range a plateau move must exceed to be
  /// applied (suppresses pure numerical-noise moves).
  double min_move_fraction = 1e-9;
  /// Per-iteration trust region: each coordinate may move away from its
  /// value at search start by at most
  /// max(trust_fraction * |start|, trust_floor_fraction * range).
  /// The linearizations (performances AND constraints) are only accurate
  /// near the expansion point; the paper leans on the constraints alone,
  /// which is not enough when constraint curvature (vdsat ~ 1/sqrt(W)) is
  /// strong.  Set to +inf to disable.
  double trust_fraction = 0.75;
  double trust_floor_fraction = 0.1;
  /// Optional observer called after every accepted move:
  /// (coordinate, alpha, passing-count after the move).
  std::function<void(std::size_t, double, std::size_t)> on_move;
};

struct CoordinateSearchResult {
  linalg::DesignVec d_star;  ///< maximizing design
  std::size_t passing = 0;   ///< passing samples at d_star
  double yield = 0.0;        ///< Y_bar at d_star
  int sweeps = 0;
  int moves = 0;             ///< accepted coordinate moves
};

/// Runs the search starting from the model's current design.  `feasibility`
/// may be null (Table-3 ablation: only the design box restricts moves).
CoordinateSearchResult maximize_linear_yield(
    LinearYieldModel& model, const FeasibilityModel* feasibility,
    const ParameterSpace& design_space,
    const CoordinateSearchOptions& options = {});

}  // namespace mayo::core
