#include "core/problem.hpp"

#include <algorithm>
#include <stdexcept>

namespace mayo::core {

void ParameterSpace::validate() const {
  const std::size_t n = names.size();
  if (lower.size() != n || upper.size() != n || nominal.size() != n)
    throw std::invalid_argument("ParameterSpace: inconsistent sizes");
  for (std::size_t i = 0; i < n; ++i) {
    if (!(lower[i] <= upper[i]))
      throw std::invalid_argument("ParameterSpace: inverted bounds for '" +
                                  names[i] + "'");
    if (nominal[i] < lower[i] || nominal[i] > upper[i])
      throw std::invalid_argument("ParameterSpace: nominal outside bounds for '" +
                                  names[i] + "'");
  }
}

linalg::Vector ParameterSpace::clamp(linalg::Vector x) const {
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::clamp(x[i], lower[i], upper[i]);
  return x;
}

bool ParameterSpace::contains(const linalg::Vector& x, double tol) const {
  if (x.size() != dimension()) return false;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double slack = tol * (upper[i] - lower[i]);
    if (x[i] < lower[i] - slack || x[i] > upper[i] + slack) return false;
  }
  return true;
}

std::size_t ParameterSpace::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == name) return i;
  throw std::out_of_range("ParameterSpace: no parameter named '" + name + "'");
}

void PerformanceModel::evaluate_batch(const linalg::DesignVec& d,
                                      linalg::StatPhysBlock s_block,
                                      const linalg::OperatingVec& theta,
                                      linalg::PerfBlockView out) {
  if (out.rows() != s_block.rows() || out.cols() != num_performances())
    throw std::invalid_argument(
        "PerformanceModel::evaluate_batch: out shape mismatch");
  // Default fallback: the scalar loop.  Native implementations override
  // this to hoist per-(d, theta) setup out of the loop.
  linalg::StatPhysVec s(s_block.cols());
  for (std::size_t j = 0; j < s_block.rows(); ++j) {
    const double* row = s_block.row(j);
    for (std::size_t i = 0; i < s.size(); ++i) s[i] = row[i];
    const linalg::PerfVec values = evaluate(d, s, theta);
    if (values.size() != num_performances())
      throw std::runtime_error(
          "PerformanceModel::evaluate_batch: wrong performance count");
    double* out_row = out.row(j);
    for (std::size_t i = 0; i < values.size(); ++i) out_row[i] = values[i];
  }
}

std::vector<std::string> PerformanceModel::constraint_names() const {
  std::vector<std::string> names;
  names.reserve(num_constraints());
  for (std::size_t i = 0; i < num_constraints(); ++i) {
    // Built via += : the operator+(const char*, string&&) form trips
    // GCC 12's bogus -Wrestrict on the inlined memcpy (PR 105651).
    std::string name = "c";
    name += std::to_string(i);
    names.push_back(std::move(name));
  }
  return names;
}

void YieldProblem::validate() const {
  if (!model) throw std::invalid_argument("YieldProblem: model not set");
  if (specs.empty()) throw std::invalid_argument("YieldProblem: no specifications");
  if (model->num_performances() != specs.size())
    throw std::invalid_argument(
        "YieldProblem: model performance count does not match specs");
  design.validate();
  operating.validate();
  if (statistical.dimension() == 0)
    throw std::invalid_argument("YieldProblem: no statistical parameters");
  for (const auto& spec : specs)
    if (!(spec.scale > 0.0))
      throw std::invalid_argument("YieldProblem: spec '" + spec.name +
                                  "' needs a positive scale");
}

}  // namespace mayo::core
