#include "core/yield_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/check.hpp"
#include "linalg/kernels.hpp"

namespace mayo::core {

using linalg::DesignVec;

LinearYieldModel::LinearYieldModel(std::vector<SpecLinearization> models,
                                   const stats::SampleSet& samples)
    : models_(std::move(models)),
      samples_(samples),
      base_(models_.size(), samples.count()),
      offsets_(models_.size()) {
  if (models_.empty())
    throw std::invalid_argument("LinearYieldModel: no models");
  for (const auto& model : models_) {
    if (model.grad_s.size() != samples.dim())
      throw std::invalid_argument(
          "LinearYieldModel: statistical dimension mismatch");
    if (model.d_f != models_.front().d_f)
      throw std::invalid_argument(
          "LinearYieldModel: models must share the expansion point d_f");
    MAYO_CHECK_DIM(model.grad_d.size(), model.d_f.size(),
                   "LinearYieldModel: grad_d vs design dimension");
    MAYO_CHECK_FINITE(model.margin_wc, "LinearYieldModel: margin_wc");
    MAYO_CHECK_FINITE(model.grad_s, "LinearYieldModel: grad_s");
    MAYO_CHECK_FINITE(model.grad_d, "LinearYieldModel: grad_d");
  }
  // base[l][j] = m_wc + grad_s^T (s_j - s_wc).  One gemv over the sample
  // matrix per spec model instead of count() scalar dots; gemv_into
  // accumulates in ascending column order, so each entry is bitwise what
  // samples.dot(j, grad_s) produced.
  linalg::MatrixView base_view(base_);
  for (std::size_t l = 0; l < models_.size(); ++l) {
    const auto& model = models_[l];
    const double shift = model.margin_wc - linalg::dot(model.grad_s, model.s_wc);
    double* row = base_view.row(l);
    linalg::gemv_into(samples.matrix(), model.grad_s.data(), row);
    for (std::size_t j = 0; j < samples.count(); ++j) row[j] = shift + row[j];
  }
  set_design(models_.front().d_f);
}

void LinearYieldModel::set_design(const DesignVec& d) {
  MAYO_CHECK_DIM(d.size(), models_.front().d_f.size(),
                 "LinearYieldModel::set_design: design dimension");
  d_ = d;
  for (std::size_t l = 0; l < models_.size(); ++l)
    offsets_[l] = linalg::dot(models_[l].grad_d, d - models_[l].d_f);
}

void LinearYieldModel::apply_coordinate(std::size_t k, double alpha) {
  d_[k] += alpha;
  // eq. (20): only one component of the inner product changes.
  for (std::size_t l = 0; l < models_.size(); ++l)
    offsets_[l] += models_[l].grad_d[k] * alpha;
}

std::size_t LinearYieldModel::passing() const {
  std::size_t count = 0;
  const std::size_t n = num_samples();
  for (std::size_t j = 0; j < n; ++j) {
    bool pass = true;
    for (std::size_t l = 0; l < models_.size(); ++l) {
      if (base_(l, j) + offsets_[l] < 0.0) {
        pass = false;
        break;
      }
    }
    count += pass ? 1 : 0;
  }
  return count;
}

std::vector<std::size_t> LinearYieldModel::bad_samples_per_spec(
    std::size_t num_specs) const {
  std::vector<std::size_t> bad(num_specs, 0);
  const std::size_t n = num_samples();
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t spec = 0; spec < num_specs; ++spec) {
      for (std::size_t l = 0; l < models_.size(); ++l) {
        if (models_[l].spec != spec) continue;
        if (base_(l, j) + offsets_[l] < 0.0) {
          ++bad[spec];
          break;
        }
      }
    }
  }
  return bad;
}

LinearYieldModel::AlphaScan LinearYieldModel::best_alpha(std::size_t k,
                                                         double alpha_lo,
                                                         double alpha_hi) const {
  if (!(alpha_lo <= alpha_hi))
    throw std::invalid_argument("best_alpha: empty alpha interval");
  const std::size_t n = num_samples();

  // Interval endpoints: +1 when a sample's feasible interval opens, -1 when
  // it closes.  Intervals are closed; starts sort before ends at ties.
  struct Event {
    double alpha;
    int delta;
  };
  std::vector<Event> events;
  events.reserve(2 * n);

  for (std::size_t j = 0; j < n; ++j) {
    double lo = alpha_lo;
    double hi = alpha_hi;
    bool empty = false;
    for (std::size_t l = 0; l < models_.size(); ++l) {
      const double margin = base_(l, j) + offsets_[l];
      const double slope = models_[l].grad_d[k];
      if (std::abs(slope) < 1e-30) {
        if (margin < 0.0) {
          empty = true;
          break;
        }
        continue;
      }
      const double boundary = -margin / slope;
      if (slope > 0.0)
        lo = std::max(lo, boundary);
      else
        hi = std::min(hi, boundary);
      if (lo > hi) {
        empty = true;
        break;
      }
    }
    if (!empty) {
      events.push_back({lo, +1});
      events.push_back({hi, -1});
    }
  }

  AlphaScan best;
  best.alpha = 0.0;
  best.passing = 0;
  best.plateau_lo = best.plateau_hi = 0.0;
  if (events.empty()) return best;

  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.alpha != b.alpha) return a.alpha < b.alpha;
    return a.delta > b.delta;  // open before close at the same alpha
  });

  // Pass 1: maximum coverage.
  long current = 0;
  long best_count = 0;
  for (const Event& event : events) {
    current += event.delta;
    best_count = std::max(best_count, current);
  }
  if (best_count <= 0) return best;
  best.passing = static_cast<std::size_t>(best_count);

  // Pass 2: among all plateaus achieving the maximum, keep the one closest
  // to alpha = 0 -- the linearization is only trusted near the expansion
  // point, so equal-yield moves should be as small as possible.
  current = 0;
  double chosen_lo = 0.0;
  double chosen_hi = 0.0;
  double chosen_distance = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < events.size(); ++i) {
    current += events[i].delta;
    if (current != best_count) continue;
    const double lo = events[i].alpha;
    const double hi = (i + 1 < events.size()) ? events[i + 1].alpha : lo;
    double distance = 0.0;
    if (lo > 0.0)
      distance = lo;
    else if (hi < 0.0)
      distance = -hi;
    if (distance < chosen_distance) {
      chosen_distance = distance;
      chosen_lo = lo;
      chosen_hi = std::max(lo, hi);
    }
  }
  best.plateau_lo = chosen_lo;
  best.plateau_hi = chosen_hi;
  // Enter the plateau from the zero-nearest edge with a 10% inset so the
  // chosen alpha does not sit exactly on a sample's pass/fail boundary.
  const double width = chosen_hi - chosen_lo;
  double alpha;
  if (chosen_lo <= 0.0 && chosen_hi >= 0.0)
    alpha = 0.0;
  else if (chosen_lo > 0.0)
    alpha = chosen_lo + 0.1 * width;
  else
    alpha = chosen_hi - 0.1 * width;
  best.alpha = std::clamp(alpha, alpha_lo, alpha_hi);
  return best;
}

}  // namespace mayo::core
