#include "core/mismatch.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace mayo::core {

double mismatch_angle_window(double angle, const MismatchOptions& options) {
  const double deviation = std::abs(angle + std::numbers::pi / 4.0);
  if (deviation <= options.delta1) return 1.0;
  if (deviation >= options.delta2) return 0.0;
  return (options.delta2 - deviation) / (options.delta2 - options.delta1);
}

double mismatch_robustness_weight(double beta) {
  if (beta < 0.0) return 1.0 - 1.0 / (2.0 * (-beta + 1.0));
  return 1.0 / (2.0 * (beta + 1.0));
}

double mismatch_measure(const linalg::StatUnitVec& s_wc, double beta,
                        std::size_t k,
                        std::size_t l, const MismatchOptions& options) {
  const double sk = s_wc.at(k);
  const double sl = s_wc.at(l);
  if (sk == 0.0 || sl == 0.0) return 0.0;
  const double s_max = s_wc.max_abs();
  if (s_max == 0.0) return 0.0;
  // Angle of the pair; same-sign pairs land near +pi/4 where the window is
  // zero, mismatch-line pairs near -pi/4.
  const double angle = std::atan(sk / sl);
  const double window = mismatch_angle_window(angle, options);
  if (window == 0.0) return 0.0;
  const double magnitude = std::max(std::abs(sk), std::abs(sl)) / s_max;
  return mismatch_robustness_weight(beta) * magnitude * window;
}

std::vector<PairMeasure> rank_mismatch_pairs(const WorstCasePoint& wc,
                                             double threshold,
                                             const MismatchOptions& options) {
  std::vector<PairMeasure> out;
  const std::size_t n = wc.s_wc.size();
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t l = k + 1; l < n; ++l) {
      const double m = mismatch_measure(wc.s_wc, wc.beta, k, l, options);
      if (m >= threshold) out.push_back({wc.spec, k, l, m});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const PairMeasure& a, const PairMeasure& b) {
              return a.measure > b.measure;
            });
  return out;
}

}  // namespace mayo::core
