// mayo/core -- structured run reports from the obs registry.
//
// A RunReport is a point-in-time snapshot of the process-wide
// instrumentation (obs::registry()): every counter, the per-phase wall
// time of the optimizer loop (paper Fig. 6), and optionally the headline
// numbers of one optimize_yield run.  It serializes to JSON under the
// stable schema "mayo.run_report/1":
//
//   {
//     "schema": "mayo.run_report/1",
//     "label": "<caller-chosen run name>",
//     "obs_enabled": true,
//     "phases": { "<phase>": {"seconds": <double>, "calls": <int>} },
//     "counters": { "<dotted.name>": <int>, ... },
//     "evaluations": { "optimization": ..., "verification": ...,
//                      "constraint": ..., "cache_hits": ... },
//     "optimizer": null | { "iterations": ..., "feasible_start_found": ...,
//                           "final_linear_yield": ...,
//                           "final_verified_yield": ...,
//                           "wall_seconds": ... }
//   }
//
// The key set is fixed by the obs Registry's enumeration order and is
// identical in obs-ON and obs-OFF builds (values are simply zero when the
// instrumentation is compiled out), so downstream tooling never branches
// on the build configuration.  Phase names map to the paper's Fig. 6
// boxes; see DESIGN.md "Observability".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/optimizer.hpp"
#include "obs/obs.hpp"

namespace mayo::core {

/// One optimizer-loop phase: accumulated wall time and entry count.
struct PhaseReport {
  std::string name;
  double seconds = 0.0;
  std::uint64_t calls = 0;
};

/// One monotonic event counter, keyed by its stable dotted name.
struct CounterReport {
  std::string name;
  std::uint64_t value = 0;
};

/// Headline numbers of one optimize_yield run (the "optimizer" JSON
/// section); absent until attach_optimizer() is called.
struct OptimizerReport {
  bool present = false;
  int iterations = 0;  ///< trace entries beyond the initial design
  bool feasible_start_found = false;
  double final_linear_yield = 0.0;
  double final_verified_yield = -1.0;  ///< -1 when verification did not run
  double wall_seconds = 0.0;
};

/// Snapshot of the obs registry plus optional run metadata.
struct RunReport {
  std::string label;
  bool obs_enabled = obs::kEnabled;
  std::vector<PhaseReport> phases;      ///< fixed Fig. 6 phase order
  std::vector<CounterReport> counters;  ///< fixed registry schema order
  EvaluationCounts evaluations;
  OptimizerReport optimizer;
};

/// Snapshots every counter and phase timer of the process-wide registry.
/// `evaluations` is zero; callers with an Evaluator fold its counts() in.
RunReport snapshot_run_report(std::string label);

/// Fills the "optimizer" section (and `evaluations`) from a finished run.
void attach_optimizer(RunReport& report, const YieldOptimizationResult& result);

/// Serializes to the "mayo.run_report/1" JSON document (UTF-8, two-space
/// indent, keys in schema order, trailing newline).
std::string to_json(const RunReport& report);

/// Writes to_json(report) to `path`; throws std::runtime_error on I/O
/// failure.  This is the sanctioned file-output path for run reports
/// (tools/lint.py io-discipline allowlist).
void write_json_file(const RunReport& report, const std::string& path);

}  // namespace mayo::core
