#include "core/parallel.hpp"

#include <algorithm>
#include <exception>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "stats/sampler.hpp"
#include "stats/summary.hpp"

namespace mayo::core {

using linalg::DesignVec;
using linalg::OperatingVec;

namespace {

/// Per-worker accumulation; merged deterministically afterwards.
struct WorkerResult {
  std::size_t passing = 0;
  std::vector<std::size_t> fails_per_spec;
  std::vector<stats::RunningStats> perf_stats;
  std::size_t evaluations = 0;
};

}  // namespace

VerificationResult parallel_monte_carlo_verify(
    Evaluator& evaluator, const DesignVec& d,
    const std::vector<OperatingVec>& theta_wc,
    const ParallelVerificationOptions& options) {
  const YieldProblem& problem = evaluator.problem();
  const std::size_t num_specs = problem.specs.size();
  if (theta_wc.size() != num_specs)
    throw std::invalid_argument(
        "parallel_monte_carlo_verify: theta_wc size mismatch");

  unsigned threads = options.threads;
  if (threads == 0)
    threads = std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<unsigned>(std::min<std::size_t>(
      threads, options.verification.num_samples));

  // Serial fallback: single worker requested or model not clonable.  The
  // fallback records its own verification span inside monte_carlo_verify,
  // so the span here starts only on the threaded path (no double count).
  if (threads <= 1 || problem.model->clone() == nullptr)
    return monte_carlo_verify(evaluator, d, theta_wc, options.verification);
  const obs::Span span(obs::registry().phases.verification);

  const CornerGrouping grouping = group_corners(theta_wc);
  const stats::SampleSet samples(options.verification.num_samples,
                                 problem.statistical.dimension(),
                                 options.verification.seed);
  const std::size_t block_size =
      std::max<std::size_t>(options.verification.block_size, 1);

  // Per-sample decisions: workers own disjoint strided blocks, so writing
  // directly into the shared vector is race-free (distinct memory
  // locations; verified under TSan by test_core_parallel_determinism).
  std::vector<std::uint8_t> sample_pass;
  if (options.verification.record_decisions)
    sample_pass.assign(samples.count(), 0);

  std::vector<WorkerResult> worker_results(threads);
  // A worker that throws (model failure, contract violation) must not call
  // std::terminate: capture the exception and rethrow on the caller's
  // thread after the join barrier.
  std::vector<std::exception_ptr> worker_errors(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);

  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {  // parallel-entry
      try {
        // Thread-local copy of the problem with a cloned model.
        YieldProblem local = problem;
        local.model = std::shared_ptr<PerformanceModel>(problem.model->clone());
        Evaluator local_evaluator(local);
        detail::BlockVerifier verifier(local_evaluator, grouping, block_size);

        // Workers pull whole sample blocks (strided round-robin): each
        // block goes through the same batch path as the serial verifier,
        // so per-sample decisions are identical by construction.
        for (std::size_t b = t; b * block_size < samples.count();
             b += threads) {
          const std::size_t first = b * block_size;
          const std::size_t count =
              std::min(block_size, samples.count() - first);
          verifier.run_block(d, samples, first, count,
                             options.verification.record_decisions
                                 ? &sample_pass
                                 : nullptr);
        }

        WorkerResult& out = worker_results[t];
        out.passing = verifier.passing();
        out.fails_per_spec = verifier.fails_per_spec();
        out.perf_stats = verifier.perf_stats();
        out.evaluations = local_evaluator.counts().verification;
      } catch (...) {
        worker_errors[t] = std::current_exception();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (const std::exception_ptr& error : worker_errors)
    if (error) std::rethrow_exception(error);

  // Deterministic merge (worker order is fixed).
  VerificationResult result;
  result.fails_per_spec.assign(num_specs, 0);
  std::vector<stats::RunningStats> merged(num_specs);
  std::size_t passing = 0;
  for (const WorkerResult& wr : worker_results) {
    passing += wr.passing;
    result.evaluations += wr.evaluations;
    for (std::size_t i = 0; i < num_specs; ++i) {
      result.fails_per_spec[i] += wr.fails_per_spec[i];
      merged[i].merge(wr.perf_stats[i]);
    }
  }
  evaluator.charge_verification(result.evaluations);
  result.sample_pass = std::move(sample_pass);

  result.yield = static_cast<double>(passing) / samples.count();
  result.confidence = stats::yield_confidence(passing, samples.count());
  result.performance_mean.resize(num_specs);
  result.performance_stddev.resize(num_specs);
  for (std::size_t i = 0; i < num_specs; ++i) {
    result.performance_mean[i] = merged[i].mean();
    result.performance_stddev[i] = merged[i].stddev();
  }
  return result;
}

namespace {

/// One spec's share of the linearization fan-out: the worst-case distance
/// search result plus the design gradient at that worst-case point.
struct SpecTask {
  WorstCasePoint wc;
  linalg::DesignVec grad_d;
};

}  // namespace

LinearizedModels parallel_build_linearizations(
    Evaluator& evaluator, const DesignVec& d_f,
    const ParallelLinearizationOptions& options) {
  const YieldProblem& problem = evaluator.problem();
  const std::size_t num_specs = evaluator.num_specs();

  unsigned threads = options.threads;
  if (threads == 0)
    threads = std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, std::max<std::size_t>(num_specs, 1)));

  // Serial fallbacks: one worker, a model without clone(), or the
  // nominal ablation (whose shared finite-difference batch is already a
  // single evaluation block -- nothing to fan out).
  if (threads <= 1 || options.linearization.linearize_at_nominal ||
      problem.model->clone() == nullptr)
    return build_linearizations(evaluator, d_f, options.linearization);

  LinearizedModels out;
  std::vector<SpecTask> tasks(num_specs);
  std::size_t worker_evaluations = 0;
  {
    // The operating-corner sweep and the per-spec distance searches both
    // account to worst_case_search, exactly like the serial path.
    const obs::Span span(obs::registry().phases.worst_case_search);
    out.operating =
        find_worst_case_operating(evaluator, d_f, options.linearization.operating);

    // Spec i goes to worker i % threads: the assignment is a pure
    // function of the spec index, so re-runs with the same thread count
    // exercise identical per-worker evaluation sequences.  Workers write
    // only tasks[i] for their own specs (disjoint memory locations).
    std::vector<std::size_t> worker_evals(threads, 0);
    std::vector<std::exception_ptr> worker_errors(threads);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t]() {  // parallel-entry
        try {
          // Thread-local copy of the problem with a cloned model.
          YieldProblem local = problem;
          local.model =
              std::shared_ptr<PerformanceModel>(problem.model->clone());
          Evaluator local_evaluator(local);
          for (std::size_t i = t; i < num_specs; i += threads) {
            SpecTask& task = tasks[i];
            task.wc = find_worst_case_point(local_evaluator, i, d_f,
                                            out.operating.theta_wc[i],
                                            options.linearization.wc);
            task.grad_d = local_evaluator.margin_gradient_d(
                i, d_f, task.wc.s_wc, out.operating.theta_wc[i],
                options.linearization.design_step_fraction);
          }
          worker_evals[t] = local_evaluator.counts().optimization;
        } catch (...) {
          worker_errors[t] = std::current_exception();
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    for (const std::exception_ptr& error : worker_errors)
      if (error) std::rethrow_exception(error);
    for (const std::size_t evals : worker_evals) worker_evaluations += evals;
  }
  // Every worker result is already computed; assembling the models is
  // pure bookkeeping and accounts to the linearization phase.
  const obs::Span span(obs::registry().phases.linearization);
  for (std::size_t i = 0; i < num_specs; ++i) {
    detail::append_spec_models(i, out.operating.theta_wc[i], d_f,
                               tasks[i].wc, std::move(tasks[i].grad_d),
                               options.linearization.enable_mirror, out);
    out.worst_cases.push_back(std::move(tasks[i].wc));
  }
  evaluator.charge_optimization(worker_evaluations);
  return out;
}

}  // namespace mayo::core
