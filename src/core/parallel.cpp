#include "core/parallel.hpp"

#include <algorithm>
#include <exception>
#include <thread>
#include <vector>

#include "core/check.hpp"
#include "stats/sampler.hpp"
#include "stats/summary.hpp"

namespace mayo::core {

using linalg::Vector;

namespace {

/// Per-worker accumulation; merged deterministically afterwards.
struct WorkerResult {
  std::size_t passing = 0;
  std::vector<std::size_t> fails_per_spec;
  std::vector<stats::RunningStats> perf_stats;
  std::size_t evaluations = 0;
};

}  // namespace

VerificationResult parallel_monte_carlo_verify(
    Evaluator& evaluator, const Vector& d,
    const std::vector<Vector>& theta_wc,
    const ParallelVerificationOptions& options) {
  const YieldProblem& problem = evaluator.problem();
  const std::size_t num_specs = problem.specs.size();
  if (theta_wc.size() != num_specs)
    throw std::invalid_argument(
        "parallel_monte_carlo_verify: theta_wc size mismatch");

  unsigned threads = options.threads;
  if (threads == 0)
    threads = std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<unsigned>(std::min<std::size_t>(
      threads, options.verification.num_samples));

  // Serial fallback: single worker requested or model not clonable.
  if (threads <= 1 || problem.model->clone() == nullptr)
    return monte_carlo_verify(evaluator, d, theta_wc, options.verification);

  const CornerGrouping grouping = group_corners(theta_wc);
  const stats::SampleSet samples(options.verification.num_samples,
                                 problem.statistical.dimension(),
                                 options.verification.seed);

  // Per-sample decisions: workers own disjoint strided indices, so writing
  // directly into the shared vector is race-free (distinct memory
  // locations; verified under TSan by test_core_parallel_determinism).
  std::vector<std::uint8_t> sample_pass;
  if (options.verification.record_decisions)
    sample_pass.assign(samples.count(), 0);

  std::vector<WorkerResult> worker_results(threads);
  // A worker that throws (model failure, contract violation) must not call
  // std::terminate: capture the exception and rethrow on the caller's
  // thread after the join barrier.
  std::vector<std::exception_ptr> worker_errors(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);

  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      try {
        // Thread-local copy of the problem with a cloned model.
        YieldProblem local = problem;
        local.model = std::shared_ptr<PerformanceModel>(problem.model->clone());
        Evaluator local_evaluator(local);

        WorkerResult& out = worker_results[t];
        out.fails_per_spec.assign(num_specs, 0);
        out.perf_stats.resize(num_specs);

        for (std::size_t j = t; j < samples.count(); j += threads) {
          const Vector s_hat = samples.sample_vector(j);
          std::vector<Vector> values(grouping.distinct.size());
          for (std::size_t g = 0; g < grouping.distinct.size(); ++g)
            values[g] = local_evaluator.performances(
                d, s_hat, grouping.distinct[g], Budget::kVerification);
          bool pass = true;
          for (std::size_t i = 0; i < num_specs; ++i) {
            const double value = values[grouping.group_of_spec[i]][i];
            MAYO_CHECK_FINITE(
                value, "parallel_monte_carlo_verify: performance sample");
            out.perf_stats[i].add(value);
            if (local.specs[i].margin(value) < 0.0) {
              ++out.fails_per_spec[i];
              pass = false;
            }
          }
          out.passing += pass ? 1 : 0;
          if (options.verification.record_decisions)
            sample_pass[j] = pass ? 1 : 0;
        }
        out.evaluations = local_evaluator.counts().verification;
      } catch (...) {
        worker_errors[t] = std::current_exception();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (const std::exception_ptr& error : worker_errors)
    if (error) std::rethrow_exception(error);

  // Deterministic merge (worker order is fixed).
  VerificationResult result;
  result.fails_per_spec.assign(num_specs, 0);
  std::vector<stats::RunningStats> merged(num_specs);
  std::size_t passing = 0;
  for (const WorkerResult& wr : worker_results) {
    passing += wr.passing;
    result.evaluations += wr.evaluations;
    for (std::size_t i = 0; i < num_specs; ++i) {
      result.fails_per_spec[i] += wr.fails_per_spec[i];
      merged[i].merge(wr.perf_stats[i]);
    }
  }
  evaluator.charge_verification(result.evaluations);
  result.sample_pass = std::move(sample_pass);

  result.yield = static_cast<double>(passing) / samples.count();
  result.confidence = stats::yield_confidence(passing, samples.count());
  result.performance_mean.resize(num_specs);
  result.performance_stddev.resize(num_specs);
  for (std::size_t i = 0; i < num_specs; ++i) {
    result.performance_mean[i] = merged[i].mean();
    result.performance_stddev[i] = merged[i].stddev();
  }
  return result;
}

}  // namespace mayo::core
