// mayo/core -- plain-text table formatting for the benchmark harness.
//
// The bench binaries print paper-style tables (specification rows,
// optimization traces, paper-vs-measured comparisons); this keeps the
// column bookkeeping in one place.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mayo::core {

/// Fixed-width text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with column-width alignment and a separator under the header.
  std::string str() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& table);

 private:
  std::vector<std::vector<std::string>> rows_;  // rows_[0] = header
};

/// Formats a double with the given precision (fixed notation).
std::string fmt(double value, int precision = 2);
/// Formats a yield as a percentage string, e.g. "99.9%".
std::string fmt_percent(double fraction, int precision = 1);
/// Formats a per-mille value, e.g. "980.4".
std::string fmt_permille(double permille, int precision = 1);

}  // namespace mayo::core
