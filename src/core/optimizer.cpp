#include "core/optimizer.hpp"

#include "core/parallel.hpp"
#include "core/problem_audit.hpp"
#include "core/yield_model.hpp"

#include <chrono>

#include "stats/sampler.hpp"

namespace mayo::core {

using linalg::DesignVec;

namespace {

/// Builds the trace row at iterate d from freshly built linearizations.
IterationRecord make_record(Evaluator& evaluator, const DesignVec& d,
                            const LinearizedModels& linearized,
                            const stats::SampleSet& samples,
                            int iteration) {
  IterationRecord record;
  record.iteration = iteration;
  record.d = d;

  LinearYieldModel yield_model(linearized.models, samples);
  yield_model.set_design(d);
  record.linear_yield = yield_model.yield();
  const std::vector<std::size_t> bad =
      yield_model.bad_samples_per_spec(evaluator.num_specs());

  record.specs.resize(evaluator.num_specs());
  for (std::size_t i = 0; i < evaluator.num_specs(); ++i) {
    record.specs[i].nominal_margin = linearized.operating.worst_margin[i];
    record.specs[i].bad_permille =
        1000.0 * static_cast<double>(bad[i]) / samples.count();
    record.specs[i].beta = linearized.worst_cases.empty()
                               ? 0.0
                               : linearized.worst_cases[i].beta;
  }

  return record;
}

void attach_verification(Evaluator& evaluator, IterationRecord& record,
                         const LinearizedModels& linearized,
                         const YieldOptimizerOptions& options) {
  if (!options.run_verification) return;
  record.verification = monte_carlo_verify(
      evaluator, record.d, linearized.operating.theta_wc, options.verification);
  record.verified_yield = record.verification.yield;
}

}  // namespace

YieldOptimizationResult optimize_yield(Evaluator& evaluator,
                                       const YieldOptimizerOptions& options) {
  enforce_problem_boundary(evaluator.problem(), options.audit);

  const auto start_time = std::chrono::steady_clock::now();
  YieldOptimizationResult result;

  const auto& design_space = evaluator.problem().design;

  // Step 1: feasible starting point (Sec. 5.5).
  DesignVec d_f(design_space.nominal);
  if (options.use_constraints) {
    const FeasibleStartResult start =
        find_feasible_start(evaluator, d_f, options.feasible_start);
    d_f = start.d;
    result.feasible_start_found = start.feasible;
  } else {
    result.feasible_start_found = true;  // not enforced in the ablation
  }

  const stats::SampleSet samples(options.linear_samples,
                                 evaluator.num_statistical(),
                                 options.sample_seed);

  const ParallelLinearizationOptions parallel_linearization{
      options.linearization, options.linearization_threads};

  // Initial linearization doubles as the "Initial" trace row.
  LinearizedModels linearized =
      parallel_build_linearizations(evaluator, d_f, parallel_linearization);
  {
    IterationRecord initial =
        make_record(evaluator, d_f, linearized, samples, 0);
    attach_verification(evaluator, initial, linearized, options);
    result.trace.push_back(std::move(initial));
  }
  result.linearizations.push_back(linearized);

  for (int iteration = 1; iteration <= options.max_iterations; ++iteration) {
    // Step 2: models are already linearized at d_f.  Constraints too:
    FeasibilityModel feasibility;
    if (options.use_constraints)
      feasibility = linearize_feasibility(
          evaluator, d_f, options.linearization.design_step_fraction);

    // Steps 3-5 with a shrinking trust region: if the candidate's
    // re-linearized yield estimate fell below the previous iterate's, the
    // linear models were overstretched -- retry the coordinate search with
    // half the trust radius ("until no further improvement", Fig. 6).
    bool accepted = false;
    CoordinateSearchOptions search_options = options.search;
    for (int attempt = 0; attempt < 3 && !accepted; ++attempt) {
      // Step 3: coordinate search on the linear models (eq. 17-20).
      LinearYieldModel yield_model(linearized.models, samples);
      yield_model.set_design(d_f);
      const CoordinateSearchResult search = maximize_linear_yield(
          yield_model, options.use_constraints ? &feasibility : nullptr,
          design_space, search_options);
      if (search.moves == 0) break;  // nothing to gain at this radius

      // Step 4: feasibility line search on true constraints (eq. 23).
      double gamma = 1.0;
      DesignVec d_new = search.d_star;
      if (options.use_constraints) {
        const LineSearchResult line = feasibility_line_search(
            evaluator, d_f, search.d_star, options.line_search);
        gamma = line.gamma;
        d_new = line.d_new;
      }
      if (gamma <= 0.0) break;  // cannot move without leaving F

      // Step 5: re-linearize at the candidate and apply the monotone
      // safeguard.
      LinearizedModels candidate_models = parallel_build_linearizations(
          evaluator, d_new, parallel_linearization);
      IterationRecord record = make_record(evaluator, d_new, candidate_models,
                                           samples, iteration);
      if (options.monotone_safeguard &&
          record.linear_yield + 1e-12 < result.trace.back().linear_yield) {
        search_options.trust_fraction *= 0.5;
        search_options.trust_floor_fraction *= 0.5;
        continue;
      }

      d_f = d_new;
      linearized = std::move(candidate_models);
      attach_verification(evaluator, record, linearized, options);
      record.gamma = gamma;
      record.moves = static_cast<std::size_t>(search.moves);
      result.trace.push_back(std::move(record));
      result.linearizations.push_back(linearized);
      accepted = true;
    }
    if (!accepted) break;
  }

  // Optional importance-sampled final verification: reuse the worst-case
  // points the last linearization already paid for as the mean shifts.
  if (options.run_is_verification && !result.linearizations.empty()) {
    const LinearizedModels& last = result.linearizations.back();
    if (!last.worst_cases.empty()) {
      std::vector<linalg::StatUnitVec> s_wc;
      s_wc.reserve(last.worst_cases.size());
      for (const WorstCasePoint& wc : last.worst_cases)
        s_wc.push_back(wc.s_wc);
      result.is_verification = importance_sample_verify(
          evaluator, d_f, last.operating.theta_wc, s_wc,
          options.is_verification);
      result.is_verification_run = true;
    }
  }

  result.final_d = d_f;
  result.counts = evaluator.counts();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time)
          .count();
  return result;
}

}  // namespace mayo::core
