#include "core/yield_bounds.hpp"

#include <algorithm>
#include <cmath>

#include "core/baseline.hpp"
#include "stats/normal.hpp"

namespace mayo::core {

YieldBounds analytic_yield_bounds(const std::vector<SpecLinearization>& models,
                                  const linalg::DesignVec& d) {
  YieldBounds bounds;
  double miss_sum = 0.0;
  double product = 1.0;
  double weakest = 1.0;
  for (const SpecLinearization& model : models) {
    const double beta = linearized_beta(model, d);
    const double y = std::isinf(beta)
                         ? (beta > 0.0 ? 1.0 : 0.0)
                         : stats::yield_from_beta(beta);
    bounds.per_spec.push_back(y);
    miss_sum += 1.0 - y;
    product *= y;
    weakest = std::min(weakest, y);
  }
  bounds.lower = std::max(0.0, 1.0 - miss_sum);
  bounds.independent = product;
  bounds.upper = weakest;
  return bounds;
}

}  // namespace mayo::core
