#include "core/yield_bounds.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/baseline.hpp"
#include "stats/normal.hpp"

namespace mayo::core {

YieldBounds analytic_yield_bounds(const std::vector<SpecLinearization>& models,
                                  const linalg::DesignVec& d) {
  // An empty model list would fall through the fold below to {1, 1, 1} --
  // a silent claim of perfect yield for a problem with no specs, which no
  // caller ever means (linearization always emits one model per spec).
  if (models.empty())
    throw std::invalid_argument(
        "analytic_yield_bounds: no linearized spec models");
  YieldBounds bounds;
  bounds.per_spec.reserve(models.size());
  double miss_sum = 0.0;
  double product = 1.0;
  double weakest = 1.0;
  for (const SpecLinearization& model : models) {
    const double beta = linearized_beta(model, d);
    const double y = std::isinf(beta)
                         ? (beta > 0.0 ? 1.0 : 0.0)
                         : stats::yield_from_beta(beta);
    bounds.per_spec.push_back(y);
    miss_sum += 1.0 - y;
    product *= y;
    weakest = std::min(weakest, y);
  }
  bounds.lower = std::max(0.0, 1.0 - miss_sum);
  bounds.independent = product;
  bounds.upper = weakest;
  return bounds;
}

}  // namespace mayo::core
