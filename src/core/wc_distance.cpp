#include "core/wc_distance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/normal.hpp"

namespace mayo::core {

using linalg::DesignVec;
using linalg::OperatingVec;
using linalg::StatUnitVec;

namespace {

struct SearchOutcome {
  StatUnitVec s;
  double margin = 0.0;
  StatUnitVec gradient;
  bool converged = false;
  int iterations = 0;
};

/// One sequential-linearization run from a given start point.
SearchOutcome run_search(Evaluator& evaluator, std::size_t spec,
                         const DesignVec& d, const OperatingVec& theta_wc,
                         const StatUnitVec& start, double scale,
                         const WcDistanceOptions& options) {
  SearchOutcome out;
  out.s = start;
  double damping = options.damping;
  double prev_abs_margin = std::numeric_limits<double>::infinity();

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++out.iterations;
    out.margin = evaluator.margin(spec, d, out.s, theta_wc);
    out.gradient = evaluator.margin_gradient_s(spec, d, out.s, theta_wc,
                                               options.gradient_step);
    const double g2 = out.gradient.norm2();
    if (g2 < 1e-20) return out;  // flat -- this start is hopeless

    // Min-norm point of the linearized level set {s | m + g^T(s - s_k) = 0}.
    const double rhs = linalg::dot(out.gradient, out.s) - out.margin;
    StatUnitVec target = out.gradient * (rhs / g2);
    StatUnitVec step = target - out.s;

    // Adaptive damping: back off when the margin residual grew.
    if (std::abs(out.margin) > prev_abs_margin)
      damping = std::max(0.25, 0.5 * damping);
    else
      damping = std::min(1.0, 1.3 * damping);
    prev_abs_margin = std::abs(out.margin);

    StatUnitVec s_new = out.s + step * damping;
    const double radius = s_new.norm();
    if (radius > options.max_radius) s_new *= options.max_radius / radius;

    const double moved = linalg::distance(s_new, out.s);
    if (std::abs(out.margin) < options.margin_tolerance * scale &&
        moved < options.step_tolerance) {
      out.converged = true;
      return out;
    }
    out.s = std::move(s_new);
  }
  // Final residual check: the last accepted iterate may be good enough.
  out.margin = evaluator.margin(spec, d, out.s, theta_wc);
  out.converged = std::abs(out.margin) < options.margin_tolerance * scale * 10.0;
  return out;
}

}  // namespace

WorstCasePoint find_worst_case_point(Evaluator& evaluator, std::size_t spec,
                                     const DesignVec& d,
                                     const OperatingVec& theta_wc,
                                     const WcDistanceOptions& options) {
  const std::size_t n = evaluator.num_statistical();
  const double scale = evaluator.problem().specs.at(spec).scale;
  const StatUnitVec origin(n);

  WorstCasePoint result;
  result.spec = spec;
  result.margin_nominal = evaluator.margin(spec, d, origin, theta_wc);

  // Collect start points: the nominal point plus curvature-seeded starts
  // along quadratic (mismatch-type) axes.
  std::vector<StatUnitVec> starts;
  starts.push_back(origin);

  if (options.curvature_starts && result.margin_nominal > 0.0) {
    const double h = options.gradient_step;
    struct Axis {
      std::size_t index;
      double curvature;
      double radius;
    };
    std::vector<Axis> axes;
    StatUnitVec probe(n);
    for (std::size_t i = 0; i < n; ++i) {
      probe[i] = h;
      const double m_plus = evaluator.margin(spec, d, probe, theta_wc);
      probe[i] = -h;
      const double m_minus = evaluator.margin(spec, d, probe, theta_wc);
      probe[i] = 0.0;
      const double curvature =
          (m_plus - 2.0 * result.margin_nominal + m_minus) / (h * h);
      // A mismatch axis hurts on both sides and with meaningful strength.
      if (m_plus < result.margin_nominal && m_minus < result.margin_nominal &&
          -curvature * 0.5 > options.curvature_threshold * scale) {
        const double radius = std::clamp(
            std::sqrt(2.0 * std::max(result.margin_nominal, 0.1 * scale) /
                      (-curvature)),
            0.5, options.max_radius);
        axes.push_back({i, curvature, radius});
      }
    }
    std::sort(axes.begin(), axes.end(), [](const Axis& a, const Axis& b) {
      return a.curvature < b.curvature;  // most negative first
    });
    int budget = options.max_extra_starts;
    for (const Axis& axis : axes) {
      if (budget <= 0) break;
      StatUnitVec plus(n);
      plus[axis.index] = axis.radius;
      starts.push_back(plus);
      --budget;
      if (budget <= 0) break;
      StatUnitVec minus(n);
      minus[axis.index] = -axis.radius;
      starts.push_back(minus);
      --budget;
    }
  }

  // Run all starts; keep the minimum-norm converged solution.
  SearchOutcome best;
  bool have_best = false;
  SearchOutcome fallback;
  bool have_fallback = false;
  for (const StatUnitVec& start : starts) {
    SearchOutcome outcome =
        run_search(evaluator, spec, d, theta_wc, start, scale, options);
    result.iterations += outcome.iterations;
    if (outcome.converged) {
      if (!have_best || outcome.s.norm2() < best.s.norm2()) {
        best = std::move(outcome);
        have_best = true;
      }
    } else if (!have_fallback ||
               std::abs(outcome.margin) < std::abs(fallback.margin)) {
      fallback = std::move(outcome);
      have_fallback = true;
    }
  }
  const SearchOutcome& chosen = have_best ? best : fallback;
  result.s_wc = chosen.s;
  result.margin_at_wc = chosen.margin;
  result.gradient = chosen.gradient.empty()
                        ? evaluator.margin_gradient_s(spec, d, chosen.s, theta_wc,
                                                      options.gradient_step)
                        : chosen.gradient;
  result.converged = chosen.converged;
  const double sign = result.margin_nominal >= 0.0 ? 1.0 : -1.0;
  result.beta = sign * result.s_wc.norm();

  // Mirror detection (eq. 21): one extra evaluation at -s_wc.  A linear
  // performance would have margin ~ 2*m0 there; a symmetric quadratic one
  // collapses back to ~0.
  if (result.margin_nominal > 0.0 && result.s_wc.norm() > 1e-9) {
    result.margin_at_mirror = evaluator.margin(spec, d, -result.s_wc, theta_wc);
    result.mirrored =
        result.margin_at_mirror <
        0.25 * result.margin_nominal + options.margin_tolerance * scale;
  }
  return result;
}

double worst_case_yield(const WorstCasePoint& wc) {
  return stats::yield_from_beta(wc.beta);
}

}  // namespace mayo::core
