#include "core/problem_audit.hpp"

#include <cmath>
#include <set>
#include <string>

#include "obs/obs.hpp"

namespace mayo::core {
namespace {

using audit::AuditReport;
using audit::Diagnostic;
using audit::Severity;

bool finite(double v) { return std::isfinite(v); }

void audit_specs(const YieldProblem& problem, AuditReport& report) {
  std::set<std::string> seen;
  for (const Specification& spec : problem.specs) {
    if (spec.name.empty()) {
      report.add({
          "AUD-040",
          Severity::kError,
          "a specification has an empty name",
          "spec",
          "",
          "give every specification a unique, non-empty name",
      });
    } else if (!seen.insert(spec.name).second) {
      report.add({
          "AUD-040",
          Severity::kError,
          "duplicate specification name '" + spec.name + "'",
          "spec",
          spec.name,
          "specification names key the per-spec linearizations and "
          "reports; make them unique",
      });
    }
    if (!finite(spec.bound)) {
      report.add({
          "AUD-041",
          Severity::kError,
          "specification '" + spec.name + "' has a non-finite bound",
          "spec",
          spec.name,
          "fix the specification bound",
      });
    }
    if (!finite(spec.scale) || spec.scale <= 0.0) {
      report.add({
          "AUD-041",
          Severity::kError,
          "specification '" + spec.name + "' has scale " +
              audit::format_quantity(spec.scale) +
              "; the worst-case search convergence scale must be finite "
              "and positive",
          "spec",
          spec.name,
          "set scale to the typical magnitude of meaningful performance "
          "differences",
      });
    }
  }
}

/// True when the space is internally consistent (sizes + bounds usable).
bool audit_space(const ParameterSpace& space, const char* which,
                 AuditReport& report) {
  const std::size_t n = space.names.size();
  if (space.lower.size() != n || space.upper.size() != n ||
      space.nominal.size() != n) {
    report.add({
        "AUD-042",
        Severity::kError,
        std::string(which) + " space is inconsistent: " +
            std::to_string(n) + " names, " +
            std::to_string(space.lower.size()) + " lower bounds, " +
            std::to_string(space.upper.size()) + " upper bounds, " +
            std::to_string(space.nominal.size()) + " nominal entries",
        "parameter",
        which,
        "names, lower, upper and nominal must all have the same length",
    });
    return false;
  }
  bool usable = true;
  std::set<std::string> seen;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& name = space.names[i];
    if (!seen.insert(name).second) {
      report.add({
          "AUD-042",
          Severity::kError,
          std::string(which) + " space has duplicate parameter name '" +
              name + "'",
          "parameter",
          name,
          "parameter names must be unique within a space",
      });
    }
    if (!finite(space.lower[i]) || !finite(space.upper[i]) ||
        space.lower[i] > space.upper[i]) {
      usable = false;
      report.add({
          "AUD-042",
          Severity::kError,
          std::string(which) + " parameter '" + name +
              "' has inverted or non-finite bounds [" +
              audit::format_quantity(space.lower[i]) + ", " +
              audit::format_quantity(space.upper[i]) + "]",
          "parameter",
          name,
          "bounds must be finite with lower <= upper",
      });
    } else if (!finite(space.nominal[i]) || space.nominal[i] < space.lower[i] ||
               space.nominal[i] > space.upper[i]) {
      report.add({
          "AUD-043",
          Severity::kWarning,
          std::string(which) + " parameter '" + name + "' has nominal " +
              audit::format_quantity(space.nominal[i]) +
              " outside its box [" + audit::format_quantity(space.lower[i]) +
              ", " + audit::format_quantity(space.upper[i]) + "]",
          "parameter",
          name,
          "the optimizer clamps into the box; start from an interior "
          "point to avoid a degenerate first step",
      });
    }
  }
  return usable;
}

void audit_model(const YieldProblem& problem, AuditReport& report) {
  if (problem.specs.empty()) {
    report.add({
        "AUD-044",
        Severity::kError,
        "the problem has no specifications; yield is undefined",
        "spec",
        "",
        "add at least one specification",
    });
  }
  if (!problem.model) {
    report.add({
        "AUD-044",
        Severity::kError,
        "the problem has no performance model",
        "model",
        "",
        "attach a PerformanceModel before optimizing",
    });
    return;
  }
  if (problem.model->num_performances() != problem.specs.size()) {
    report.add({
        "AUD-044",
        Severity::kError,
        "the model returns " +
            std::to_string(problem.model->num_performances()) +
            " performances but the problem has " +
            std::to_string(problem.specs.size()) + " specifications",
        "model",
        "",
        "specifications must match the model's performance vector "
        "entry for entry",
    });
  }
}

void audit_statistical(const YieldProblem& problem, bool design_usable,
                       AuditReport& report) {
  if (!design_usable || problem.statistical.dimension() == 0) return;
  const linalg::DesignVec d(problem.design.nominal);
  // Per-parameter evaluation rather than CovarianceModel::sigmas():
  // that call throws at the *first* bad sigma, which would reduce a
  // multi-parameter failure to one unnamed finding.
  for (std::size_t i = 0; i < problem.statistical.dimension(); ++i) {
    const stats::StatParam& param = problem.statistical.param(i);
    double sigma = 0.0;
    try {
      sigma = param.sigma(d);
    } catch (const std::exception& e) {
      report.add({
          "AUD-045",
          Severity::kError,
          "evaluating sigma of statistical parameter '" + param.name +
              "' at the nominal design failed: " + e.what(),
          "parameter",
          param.name,
          "sigma callbacks must be defined over the whole design box",
      });
      continue;
    }
    if (finite(sigma) && sigma > 0.0) continue;
    report.add({
        "AUD-045",
        Severity::kError,
        "statistical parameter '" + param.name + "' has sigma " +
            audit::format_quantity(sigma) +
            " at the nominal design; it must be finite and positive",
        "parameter",
        param.name,
        "a zero or negative sigma makes the covariance factor singular",
    });
  }
  if (problem.statistical.has_correlation()) {
    try {
      (void)problem.statistical.factor(d);
    } catch (const std::exception& e) {
      report.add({
          "AUD-045",
          Severity::kError,
          std::string("the statistical correlation matrix is not positive "
                      "definite: ") +
              e.what(),
          "parameter",
          "",
          "correlation entries must keep R positive definite "
          "(|rho| < 1 and consistent couplings)",
      });
    }
  }
}

}  // namespace

audit::AuditReport audit_problem(const YieldProblem& problem) {
  AuditReport report;
  audit_specs(problem, report);
  const bool design_usable = audit_space(problem.design, "design", report);
  (void)audit_space(problem.operating, "operating", report);
  audit_model(problem, report);
  audit_statistical(problem, design_usable, report);
  obs::registry().counters.audit_runs.add();
  obs::registry().counters.audit_findings.add(report.size());
  return report;
}

void enforce_problem_boundary(const YieldProblem& problem,
                              audit::Enforce enforce) {
  if (!audit::enforce_active(enforce)) return;
  const audit::AuditReport report = audit_problem(problem);
  if (report.has_errors()) {
    obs::registry().counters.audit_rejects.add();
    throw audit::AuditError(report);
  }
}

}  // namespace mayo::core
