#include "core/is_verification.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/check.hpp"
#include "obs/obs.hpp"
#include "stats/rng.hpp"

namespace mayo::core {

using linalg::DesignVec;
using linalg::Matrixd;
using linalg::MatrixView;
using linalg::OperatingVec;
using linalg::StatUnitVec;

namespace detail {

void IsAccumulator::add(bool fail, double w) {
  MAYO_CHECK_FINITE(w, "importance_sample_verify: likelihood ratio");
  ++count;
  sum_w += w;
  sum_w2 += w * w;
  if (fail) {
    ++fails;
    sum_fw += w;
    sum_fw2 += w * w;
  }
}

void IsAccumulator::merge(const IsAccumulator& other) {
  count += other.count;
  fails += other.fails;
  sum_w += other.sum_w;
  sum_w2 += other.sum_w2;
  sum_fw += other.sum_fw;
  sum_fw2 += other.sum_fw2;
}

double IsAccumulator::ess() const {
  return sum_fw2 > 0.0 ? sum_fw * sum_fw / sum_fw2 : 0.0;
}

SpecIsEstimate finalize_estimate(std::size_t spec, const IsAccumulator& acc,
                                 double shift_norm,
                                 const IsVerificationOptions& options) {
  SpecIsEstimate estimate;
  estimate.spec = spec;
  estimate.samples = acc.count;
  estimate.fails = acc.fails;
  estimate.shift_norm = shift_norm;
  estimate.ess = acc.ess();
  if (acc.count == 0) {
    // No draws: no information.  Vacuous interval, no fallback.
    estimate.lower = 0.0;
    estimate.upper = 1.0;
    return estimate;
  }
  const double n = static_cast<double>(acc.count);
  if (!(estimate.ess > 0.0)) {
    // No failing draw (or every failing weight underflowed).  The Wilson
    // upper bound at the raw count caps the proposal-mass a miss could
    // hide, but each missed failure enters p_hat with its likelihood
    // ratio, and over the linearized failure half-space
    // {s_wc . s >= beta^2} the ratio is bounded:
    //   w(s) = exp(|mu|^2/2 - mu . s) <= exp(|mu|^2 (1/2 - 1/scale)),
    // which is exp(-beta^2/2) at the default shift_scale = 1.  Scaling
    // the Wilson bound by that cap keeps a far-out spec (beta large,
    // zero observed failures) from dominating the yield bracket -- the
    // one model-assisted step in the CI; see DESIGN.md section 13.  A
    // zero shift (or scale >= 2) degrades the cap to 1, i.e. back to
    // the assumption-free plain Wilson bound.
    estimate.fail_probability = 0.0;
    const stats::YieldInterval ci =
        stats::weighted_yield_confidence(0.0, n, options.z);
    double weight_cap = 1.0;
    if (options.shift_scale > 0.0 && shift_norm > 0.0)
      weight_cap = std::min(
          1.0, std::exp(shift_norm * shift_norm *
                        (0.5 - 1.0 / options.shift_scale)));
    estimate.lower = ci.lower;
    estimate.upper = std::min(1.0, ci.upper * weight_cap);
    return estimate;
  }

  // Degeneracy gauge: weight-effective count of FAILING draws.  (The
  // all-draws ESS decays like n e^{-beta^2} even for a healthy shift --
  // the big weights live where f = 0 and never touch p_hat -- so it
  // would misfire exactly in the high-beta regime.)
  estimate.self_normalized =
      estimate.ess < options.ess_fraction * static_cast<double>(acc.fails);

  const double p_unbiased = acc.sum_fw / n;
  // sum_w >= sum_fw > 0 in this branch, so the ratio is well defined.
  const double p_self = acc.sum_fw / acc.sum_w;
  const double p_raw = estimate.self_normalized ? p_self : p_unbiased;
  estimate.fail_probability = std::clamp(p_raw, 0.0, 1.0);

  // Variance of the chosen estimator's mean:
  //   unbiased:        Var = (1/n) * sample variance of the terms f w
  //   self-normalized: delta method,
  //                    Var = n * sum_j w_j^2 (f_j - p~)^2 / (sum w)^2.
  double var_mean;
  if (estimate.self_normalized) {
    const double resid = acc.sum_fw2 * (1.0 - p_self) * (1.0 - p_self) +
                         (acc.sum_w2 - acc.sum_fw2) * p_self * p_self;
    var_mean = n * std::max(resid, 0.0) / (acc.sum_w * acc.sum_w);
  } else {
    var_mean = std::max(acc.sum_fw2 / n - p_unbiased * p_unbiased, 0.0) / n;
  }

  // Wilson-analogue interval at the variance-matched effective count
  // n_eff = p (1 - p) / Var(p_hat); for unit weights this recovers the
  // plain Wilson interval at n exactly.  Degenerate variance (all terms
  // equal) or a clamped endpoint fall back to the raw count.
  const double p = estimate.fail_probability;
  double n_eff = n;
  if (var_mean > 0.0 && p > 0.0 && p < 1.0) n_eff = p * (1.0 - p) / var_mean;
  const stats::YieldInterval ci =
      stats::weighted_yield_confidence(p, n_eff, options.z);
  estimate.lower = std::min(ci.lower, p);
  estimate.upper = std::max(ci.upper, p);
  return estimate;
}

IsBlockEvaluator::IsBlockEvaluator(Evaluator& evaluator, std::size_t block_size)
    : evaluator_(evaluator),
      values_(std::max<std::size_t>(block_size, 1), evaluator.num_specs()) {}

void IsBlockEvaluator::run_block(const DesignVec& d, std::size_t spec,
                                 const OperatingVec& theta,
                                 const stats::ShiftedSampler& sampler,
                                 std::size_t first, std::size_t count,
                                 IsAccumulator& acc) {
  if (count == 0) return;
  const std::size_t num_specs = evaluator_.num_specs();
  if (values_.rows() < count)
    values_ = Matrixd(count, num_specs);  // hot-ok: grow-only, reused
  const linalg::StatUnitBlock block = sampler.samples().block(first, count);
  // One batch call at the spec's own worst-case corner (the per-spec
  // face of the corner-grouped path of detail::BlockVerifier).
  evaluator_.performances_batch(
      d, block, theta,
      linalg::PerfBlockView(MatrixView(values_).middle_rows(0, count)), ws_,
      Budget::kVerification);
  const Specification& spec_def = evaluator_.problem().specs[spec];
  // Accumulation stays in ascending sample order: together with the
  // fixed block-merge order of the round runner this makes the fold
  // independent of which worker ran which block.
  for (std::size_t r = 0; r < count; ++r) {
    const double value = values_(r, spec);
    MAYO_CHECK_FINITE(value, "importance_sample_verify: performance sample");
    acc.add(spec_def.margin(value) < 0.0, sampler.weight(first + r));
  }
  obs::Counters& tallies = obs::registry().counters;
  tallies.mc_is_blocks.add();
  tallies.mc_is_samples.add(count);
}

}  // namespace detail

namespace {

/// One parallel worker's private evaluation chain: cloned model, its own
/// Evaluator (cold caches) and block engine.  Heap-held so the
/// YieldProblem the Evaluator references keeps a stable address.
struct WorkerContext {
  WorkerContext(const YieldProblem& problem, std::size_t block_size)
      : local(problem) {
    local.model = std::shared_ptr<PerformanceModel>(problem.model->clone());
    evaluator = std::make_unique<Evaluator>(local);
    engine = std::make_unique<detail::IsBlockEvaluator>(*evaluator, block_size);
  }

  YieldProblem local;
  std::unique_ptr<Evaluator> evaluator;
  std::unique_ptr<detail::IsBlockEvaluator> engine;
};

/// Runs one (spec, round) allocation: draws the round's sub-stream,
/// evaluates its blocks (serial, or fanned over the worker pool) and
/// folds the per-block tallies into `total` in ascending block order --
/// the merge sequence that makes serial and parallel runs bitwise equal.
void run_round(const DesignVec& d, std::size_t spec, std::uint64_t round_id,
               std::size_t count, const StatUnitVec& mu,
               const OperatingVec& theta, const IsVerificationOptions& options,
               detail::IsBlockEvaluator& serial_engine,
               std::vector<std::unique_ptr<WorkerContext>>& workers,
               detail::IsAccumulator& total) {
  const stats::ShiftedSampler sampler(
      count, mu, stats::substream_seed(options.seed, spec, round_id));
  const std::size_t block_size = std::max<std::size_t>(options.block_size, 1);
  const std::size_t num_blocks = (count + block_size - 1) / block_size;
  std::vector<detail::IsAccumulator> block_accs(num_blocks);

  const std::size_t pool =
      std::min<std::size_t>(workers.size(), num_blocks);
  if (pool > 1) {
    // Blocks go to worker b % pool; each worker writes only its own
    // slots of block_accs (disjoint memory locations).
    std::vector<std::exception_ptr> worker_errors(pool);
    std::vector<std::thread> threads;
    threads.reserve(pool);
    for (std::size_t t = 0; t < pool; ++t) {
      threads.emplace_back([&, t]() {  // parallel-entry
        try {
          WorkerContext& ctx = *workers[t];
          for (std::size_t b = t; b < num_blocks; b += pool) {
            const std::size_t first = b * block_size;
            const std::size_t n = std::min(block_size, count - first);
            ctx.engine->run_block(d, spec, theta, sampler, first, n,
                                  block_accs[b]);
          }
        } catch (...) {
          worker_errors[t] = std::current_exception();
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    for (const std::exception_ptr& error : worker_errors)
      if (error) std::rethrow_exception(error);
  } else {
    for (std::size_t b = 0; b < num_blocks; ++b) {
      const std::size_t first = b * block_size;
      const std::size_t n = std::min(block_size, count - first);
      serial_engine.run_block(d, spec, theta, sampler, first, n,
                              block_accs[b]);
    }
  }

  for (std::size_t b = 0; b < num_blocks; ++b) total.merge(block_accs[b]);
}

}  // namespace

IsVerificationResult importance_sample_verify(
    Evaluator& evaluator, const DesignVec& d,
    const std::vector<OperatingVec>& theta_wc,
    const std::vector<StatUnitVec>& s_wc,
    const IsVerificationOptions& options) {
  const std::size_t num_specs = evaluator.num_specs();
  if (theta_wc.size() != num_specs)
    throw std::invalid_argument(
        "importance_sample_verify: theta_wc size mismatch");
  if (s_wc.size() != num_specs)
    throw std::invalid_argument("importance_sample_verify: s_wc size mismatch");
  if (options.initial_samples == 0)
    throw std::invalid_argument(
        "importance_sample_verify: initial_samples must be positive (an "
        "empty round carries no estimate for the allocator to refine)");
  if (options.max_rounds > 0 && options.round_samples == 0)
    throw std::invalid_argument(
        "importance_sample_verify: round_samples must be positive when "
        "adaptive rounds are enabled");
  for (const StatUnitVec& point : s_wc)
    if (point.size() != evaluator.num_statistical())
      throw std::invalid_argument(
          "importance_sample_verify: s_wc dimension mismatch");
  const obs::Span span(obs::registry().phases.is_verification);

  // Per-spec proposal means mu_i = shift_scale * s_wc_i.
  std::vector<StatUnitVec> mu;
  mu.reserve(num_specs);
  for (const StatUnitVec& point : s_wc) mu.push_back(point * options.shift_scale);

  const std::size_t evals_before = evaluator.counts().verification;
  const std::size_t block_size = std::max<std::size_t>(options.block_size, 1);
  detail::IsBlockEvaluator serial_engine(evaluator, block_size);

  // Worker pool, built once and reused by every round.  Capped by the
  // largest number of blocks any single round can have -- extra workers
  // would only pay the model-clone cost and then idle.
  unsigned threads = options.threads;
  if (threads == 0)
    threads = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t round_cap =
      std::max(options.initial_samples, options.round_samples);
  threads = static_cast<unsigned>(std::min<std::size_t>(
      threads, (round_cap + block_size - 1) / block_size));
  std::vector<std::unique_ptr<WorkerContext>> workers;
  if (threads > 1 && evaluator.problem().model->clone() != nullptr) {
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
      workers.push_back(
          std::make_unique<WorkerContext>(evaluator.problem(), block_size));
  }

  std::vector<detail::IsAccumulator> totals(num_specs);
  std::vector<SpecIsEstimate> estimates(num_specs);
  obs::Counters& tallies = obs::registry().counters;

  // Round 0: every spec gets its initial allocation (sub-stream
  // (spec, 0)).
  for (std::size_t i = 0; i < num_specs; ++i) {
    run_round(d, i, 0, options.initial_samples, mu[i], theta_wc[i], options,
              serial_engine, workers, totals[i]);
    estimates[i] =
        detail::finalize_estimate(i, totals[i], mu[i].norm(), options);
  }

  // Adaptive rounds: spend each round's budget on the spec with the
  // widest failure CI (ties -> lowest index; sub-stream (spec, r)).
  std::size_t rounds = 0;
  for (std::size_t r = 1; r <= options.max_rounds; ++r) {
    std::size_t widest = 0;
    for (std::size_t i = 1; i < num_specs; ++i)
      if (estimates[i].half_width() > estimates[widest].half_width())
        widest = i;
    if (options.target_half_width > 0.0 &&
        estimates[widest].half_width() <= options.target_half_width)
      break;
    run_round(d, widest, r, options.round_samples, mu[widest],
              theta_wc[widest], options, serial_engine, workers,
              totals[widest]);
    estimates[widest] = detail::finalize_estimate(widest, totals[widest],
                                                  mu[widest].norm(), options);
    ++rounds;
    tallies.mc_is_rounds.add();
  }

  // Worker evaluations join the caller's verification budget.
  std::size_t worker_evaluations = 0;
  for (const std::unique_ptr<WorkerContext>& worker : workers)
    worker_evaluations += worker->evaluator->counts().verification;
  evaluator.charge_verification(worker_evaluations);

  IsVerificationResult result;
  result.rounds = rounds;
  result.per_spec = std::move(estimates);
  double sum_p = 0.0;
  double sum_upper = 0.0;
  double max_lower = 0.0;
  for (const SpecIsEstimate& estimate : result.per_spec) {
    sum_p += estimate.fail_probability;
    sum_upper += estimate.upper;
    max_lower = std::max(max_lower, estimate.lower);
    if (estimate.self_normalized) tallies.mc_is_ess_fallbacks.add();
  }
  result.yield = std::clamp(1.0 - sum_p, 0.0, 1.0);
  result.confidence = {result.yield, std::clamp(1.0 - sum_upper, 0.0, 1.0),
                       std::clamp(1.0 - max_lower, 0.0, 1.0)};
  result.evaluations = evaluator.counts().verification - evals_before;
  return result;
}

}  // namespace mayo::core
