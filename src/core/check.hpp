// mayo/core -- debug contract checks for the numeric kernels.
//
// The optimizer's credibility rests on numerics: one silent NaN entering
// the yield accumulation, one dimension mismatch between a Jacobian and a
// sample vector, invalidates the reproduced paper tables without any test
// noticing.  These macros make such contracts explicit at the linalg /
// stats / core API boundaries:
//
//   MAYO_ASSERT(cond, msg)                 -- general invariant
//   MAYO_CHECK_DIM(actual, expected, what) -- dimension agreement
//   MAYO_CHECK_FINITE(value, what)         -- double or range of doubles
//
// In debug builds a violated contract throws mayo::ContractViolation
// (a std::logic_error) carrying file:line and the violated condition; the
// gtest suites assert both that the contracts fire and that legal inputs
// pass.  With NDEBUG (Release) every macro expands to ((void)0): zero
// instructions on the hot Monte-Carlo path, verified by the benchmarks.
//
// This header is deliberately dependency-free (no linalg types) so the
// lower layers (linalg, stats) can include it without inverting the
// module layering; tools/lint.py allowlists exactly this header.
#pragma once

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <string>

namespace mayo {

/// Thrown by the MAYO_* contract macros in debug builds.  Deriving from
/// std::logic_error: a violated contract is a programming error, not a
/// runtime condition callers should handle.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& message)
      : std::logic_error(message) {}
};

namespace check_detail {

[[noreturn]] inline void fail(const char* file, int line, const char* kind,
                              const std::string& detail) {
  throw ContractViolation(std::string(file) + ":" + std::to_string(line) +
                          ": contract violation [" + kind + "] " + detail);
}

inline void assert_true(bool ok, const char* expr, const char* msg,
                        const char* file, int line) {
  if (!ok) fail(file, line, "assert", std::string(expr) + " -- " + msg);
}

inline void check_dim(std::size_t actual, std::size_t expected,
                      const char* what, const char* file, int line) {
  if (actual != expected)
    fail(file, line, "dim",
         std::string(what) + ": got " + std::to_string(actual) +
             ", expected " + std::to_string(expected));
}

inline void check_finite(double value, const char* what, const char* file,
                         int line) {
  if (!std::isfinite(value))
    fail(file, line, "finite",
         std::string(what) + " = " + std::to_string(value));
}

/// Range overload: anything iterable over doubles (linalg::Vector,
/// std::vector<double>, ...).  Reports the offending index.
template <typename Range>
inline void check_finite(const Range& values, const char* what,
                         const char* file, int line) {
  std::size_t i = 0;
  for (const double v : values) {
    if (!std::isfinite(v))
      fail(file, line, "finite",
           std::string(what) + "[" + std::to_string(i) +
               "] = " + std::to_string(v));
    ++i;
  }
}

}  // namespace check_detail
}  // namespace mayo

// MAYO_FORCE_CHECKS keeps the contracts alive in optimized builds (used by
// the NDEBUG-behaviour test); otherwise they follow assert(): on unless
// NDEBUG.
#if !defined(NDEBUG) || defined(MAYO_FORCE_CHECKS)
#define MAYO_CHECKS_ENABLED 1
#else
#define MAYO_CHECKS_ENABLED 0
#endif

#if MAYO_CHECKS_ENABLED

#define MAYO_ASSERT(cond, msg) \
  ::mayo::check_detail::assert_true(static_cast<bool>(cond), #cond, msg, __FILE__, __LINE__)
#define MAYO_CHECK_DIM(actual, expected, what) \
  ::mayo::check_detail::check_dim((actual), (expected), what, __FILE__, __LINE__)
#define MAYO_CHECK_FINITE(value, what) \
  ::mayo::check_detail::check_finite((value), what, __FILE__, __LINE__)

#else

#define MAYO_ASSERT(cond, msg) ((void)0)
#define MAYO_CHECK_DIM(actual, expected, what) ((void)0)
#define MAYO_CHECK_FINITE(value, what) ((void)0)

#endif
