#include "core/linearization.hpp"

#include "core/verification.hpp"
#include "obs/obs.hpp"

namespace mayo::core {

using linalg::DesignVec;
using linalg::OperatingVec;
using linalg::StatUnitVec;

double SpecLinearization::value(const DesignVec& d,
                                const StatUnitVec& s_hat) const {
  return margin_wc + linalg::dot(grad_s, s_hat - s_wc) +
         linalg::dot(grad_d, d - d_f);
}

LinearizedModels build_linearizations(Evaluator& evaluator,
                                      const DesignVec& d_f,
                                      const LinearizationOptions& options) {
  // Phase accounting: the worst-case searches (operating corners, then the
  // per-spec statistical distance searches) and the model building proper
  // record into disjoint spans, so worst_case_search + linearization
  // partition this function's wall time.
  LinearizedModels out;
  {
    const obs::Span span(obs::registry().phases.worst_case_search);
    out.operating = find_worst_case_operating(evaluator, d_f, options.operating);
  }

  const std::size_t num_specs = evaluator.num_specs();

  // Ablation mode shares the finite-difference block across specs: one
  // margin_gradients_s batch per distinct operating corner instead of a
  // per-spec gradient loop (probes the identical point set, so budget
  // charges are unchanged; each row is bitwise the scalar gradient).
  CornerGrouping grouping;
  std::vector<linalg::Matrixd> nominal_grads;
  if (options.linearize_at_nominal) {
    const obs::Span span(obs::registry().phases.linearization);
    grouping = group_corners(out.operating.theta_wc);
    nominal_grads.reserve(grouping.distinct.size());
    const StatUnitVec s_nominal = evaluator.nominal_s_hat();
    for (const OperatingVec& theta : grouping.distinct)
      nominal_grads.push_back(evaluator.margin_gradients_s(
          d_f, s_nominal, theta, options.wc.gradient_step));
  }

  for (std::size_t i = 0; i < num_specs; ++i) {
    const OperatingVec& theta_wc = out.operating.theta_wc[i];

    WorstCasePoint wc;
    if (options.linearize_at_nominal) {
      const obs::Span span(obs::registry().phases.linearization);
      // Ablation: pretend the worst case sits at the nominal point.
      wc.spec = i;
      wc.s_wc = evaluator.nominal_s_hat();
      wc.margin_nominal = evaluator.margin(i, d_f, wc.s_wc, theta_wc);
      wc.margin_at_wc = wc.margin_nominal;
      const linalg::Matrixd& grads = nominal_grads[grouping.group_of_spec[i]];
      wc.gradient = StatUnitVec(evaluator.num_statistical());
      for (std::size_t k = 0; k < wc.gradient.size(); ++k)
        wc.gradient[k] = grads(i, k);
      wc.beta = 0.0;
      wc.converged = true;
    } else {
      const obs::Span span(obs::registry().phases.worst_case_search);
      wc = find_worst_case_point(evaluator, i, d_f, theta_wc, options.wc);
    }

    const obs::Span assembly_span(obs::registry().phases.linearization);
    detail::append_spec_models(
        i, theta_wc, d_f, wc,
        evaluator.margin_gradient_d(i, d_f, wc.s_wc, theta_wc,
                                    options.design_step_fraction),
        options.enable_mirror && !options.linearize_at_nominal, out);
    out.worst_cases.push_back(std::move(wc));
  }
  return out;
}

namespace detail {

void append_spec_models(std::size_t spec, const OperatingVec& theta_wc,
                        const DesignVec& d_f, const WorstCasePoint& wc,
                        DesignVec grad_d, bool enable_mirror,
                        LinearizedModels& out) {
  SpecLinearization model;
  model.spec = spec;
  model.theta_wc = theta_wc;
  model.s_wc = wc.s_wc;
  model.d_f = d_f;
  model.margin_wc = wc.margin_at_wc;
  model.grad_s = wc.gradient;
  model.grad_d = std::move(grad_d);
  model.beta = wc.beta;
  out.models.push_back(model);

  if (enable_mirror && wc.mirrored) {
    // Mirrored model (eq. 21-22): expansion at -s_wc with negated
    // statistical gradient; margin there was measured during detection.
    SpecLinearization mirror = model;
    mirror.is_mirror = true;
    mirror.s_wc = -wc.s_wc;
    mirror.margin_wc = wc.margin_at_mirror;
    mirror.grad_s = -wc.gradient;
    out.models.push_back(std::move(mirror));
  }
}

}  // namespace detail

}  // namespace mayo::core
