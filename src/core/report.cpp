#include "core/report.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace mayo::core {

TextTable::TextTable(std::vector<std::string> header) {
  if (header.empty()) throw std::invalid_argument("TextTable: empty header");
  rows_.push_back(std::move(header));
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != rows_.front().size())
    throw std::invalid_argument("TextTable: row width mismatch");
  rows_.push_back(std::move(row));
}

std::string TextTable::str() const {
  const std::size_t cols = rows_.front().size();
  std::vector<std::size_t> widths(cols, 0);
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < cols; ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c > 0) os << "  ";
      os << rows_[r][c];
      os << std::string(widths[c] - rows_[r][c].size(), ' ');
    }
    os << '\n';
    if (r == 0) {
      std::size_t total = 0;
      for (std::size_t c = 0; c < cols; ++c) total += widths[c] + (c > 0 ? 2 : 0);
      os << std::string(total, '-') << '\n';
    }
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.str();
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

std::string fmt_percent(double fraction, int precision) {
  return fmt(100.0 * fraction, precision) + "%";
}

std::string fmt_permille(double permille, int precision) {
  return fmt(permille, precision);
}

}  // namespace mayo::core
