// mayo/core -- problem-level static analysis (the audit subsystem's
// YieldProblem rule family).
//
// Lives in core, not src/audit, because the audit layer sits below core
// and cannot see YieldProblem; it reuses the audit Diagnostic / report /
// enforcement vocabulary so one artifact format covers both netlist and
// problem findings.  Rule codes AUD-040..AUD-045, table in DESIGN.md
// section 12.
#pragma once

#include "audit/audit.hpp"
#include "core/problem.hpp"

namespace mayo::core {

/// Audits a problem definition: specs (duplicate names, non-finite
/// bounds, bad scales), design/operating spaces (size mismatches,
/// inverted bounds, nominal outside the box), the model wiring
/// (null model, empty specs, performance-count mismatch), and the
/// statistical model (non-positive or non-finite sigmas, a correlation
/// matrix whose factorization fails).
audit::AuditReport audit_problem(const YieldProblem& problem);

/// Optimizer-boundary gate: when `enforce` is active (Debug default,
/// opt-in in Release), runs audit_problem and throws audit::AuditError
/// when the report contains errors.
void enforce_problem_boundary(const YieldProblem& problem,
                              audit::Enforce enforce);

}  // namespace mayo::core
