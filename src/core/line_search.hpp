// mayo/core -- simulation-based feasibility line search (paper eq. 23).
//
// The coordinate search trusts *linearized* constraints; before the result
// becomes the next iterate, the largest gamma in [0, 1] with
// c(d_f + gamma * (d* - d_f)) >= 0 on the TRUE constraints is determined
// with a small number of constraint evaluations (the paper quotes ~10).
#pragma once

#include "core/evaluator.hpp"
#include "linalg/spaces.hpp"

namespace mayo::core {

struct LineSearchOptions {
  int max_evaluations = 10;  ///< constraint-evaluation budget
  double tolerance = 0.0;    ///< accepted constraint violation
};

struct LineSearchResult {
  double gamma = 0.0;        ///< accepted step fraction
  linalg::DesignVec d_new;   ///< d_f + gamma * (d_star - d_f)
  int evaluations = 0;       ///< constraint evaluations spent
  bool full_step = false;    ///< gamma == 1 accepted immediately
};

/// Finds the largest feasible gamma by bisection.  `d_f` must be feasible;
/// if even gamma = 0 violates the constraints the result has gamma = 0 and
/// d_new = d_f.
LineSearchResult feasibility_line_search(Evaluator& evaluator,
                                         const linalg::DesignVec& d_f,
                                         const linalg::DesignVec& d_star,
                                         const LineSearchOptions& options = {});

}  // namespace mayo::core
