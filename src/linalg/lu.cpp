#include "linalg/lu.hpp"

namespace mayo::linalg {

Vector solve(const Matrixd& a, const Vector& b) {
  Lud lu(a);
  std::vector<double> rhs(b.begin(), b.end());
  return Vector(lu.solve(rhs));
}

VectorC solve(const Matrixc& a, const VectorC& b) {
  Luc lu(a);
  return lu.solve(b);
}

Matrixd inverse(const Matrixd& a) {
  const std::size_t n = a.rows();
  Lud lu(a);
  Matrixd inv(n, n);
  std::vector<double> e(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    e[c] = 1.0;
    const std::vector<double> col = lu.solve(e);
    e[c] = 0.0;
    for (std::size_t r = 0; r < n; ++r) inv(r, c) = col[r];
  }
  return inv;
}

}  // namespace mayo::linalg
