#include "linalg/kernels.hpp"

#include <stdexcept>

namespace mayo::linalg {

void gemv_into(ConstMatrixView m, const double* x, double* y) {
  const std::size_t rows = m.rows();
  const std::size_t cols = m.cols();
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = m.row(r);
    double acc = 0.0;
    for (std::size_t c = 0; c < cols; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

void gemv_into(ConstMatrixView m, const Vector& x, Vector& y) {
  if (x.size() != m.cols())
    throw std::invalid_argument("gemv_into: x size mismatch");
  if (y.size() != m.rows())
    throw std::invalid_argument("gemv_into: y size mismatch");
  gemv_into(m, x.data(), y.data());
}

void axpy_into(Vector& y, double alpha, const Vector& x) {
  if (y.size() != x.size())
    throw std::invalid_argument("axpy_into: size mismatch");
  double* yp = y.data();
  const double* xp = x.data();
  for (std::size_t i = 0; i < y.size(); ++i) yp[i] += alpha * xp[i];
}

void copy_axpy_into(Vector& y, const Vector& x, double alpha, const Vector& z) {
  if (y.size() != x.size() || y.size() != z.size())
    throw std::invalid_argument("copy_axpy_into: size mismatch");
  double* yp = y.data();
  const double* xp = x.data();
  const double* zp = z.data();
  for (std::size_t i = 0; i < y.size(); ++i) yp[i] = xp[i] + alpha * zp[i];
}

void cholesky_solve_into(const Cholesky& chol, const Vector& b, Vector& out) {
  const std::size_t n = chol.size();
  if (b.size() != n)
    throw std::invalid_argument("cholesky_solve_into: rhs size mismatch");
  if (out.size() != n)
    throw std::invalid_argument("cholesky_solve_into: out size mismatch");
  const Matrixd& l = chol.factor();
  // L y = b (y lives in `out`).
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= l(i, j) * out[j];
    out[i] = acc / l(i, i);
  }
  // L^T x = y, in place back to front.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = out[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= l(j, ii) * out[j];
    out[ii] = acc / l(ii, ii);
  }
}

void assemble_complex_into(const double* g, const double* c, double omega,
                           std::complex<double>* a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    a[i] = std::complex<double>(g[i], omega * c[i]);
}

void assemble_complex_into(const Matrixd& g, const Matrixd& c, double omega,
                           Matrixc& a) {
  if (g.rows() != c.rows() || g.cols() != c.cols() || g.rows() != a.rows() ||
      g.cols() != a.cols())
    throw std::invalid_argument("assemble_complex_into: shape mismatch");
  assemble_complex_into(g.data(), c.data(), omega, a.data(),
                        g.rows() * g.cols());
}

}  // namespace mayo::linalg
