// mayo/linalg -- dense real vector type.
//
// A small, dependency-free dense vector used throughout the library for
// parameter sets (design, statistical, operating), gradients, and solver
// state.  Elements are doubles; sizes are expected to stay in the range of
// a few hundred at most (circuit parameter spaces), so everything is plain
// contiguous storage with value semantics.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

#include "core/check.hpp"

namespace mayo::linalg {

/// Dense real vector with value semantics and elementwise arithmetic.
class Vector {
 public:
  Vector() = default;
  /// Zero vector of dimension `n`.
  explicit Vector(std::size_t n) : data_(n, 0.0) {}
  /// Vector of dimension `n` filled with `value`.
  Vector(std::size_t n, double value) : data_(n, value) {}
  Vector(std::initializer_list<double> init) : data_(init) {}
  /// Adopts an existing buffer.
  explicit Vector(std::vector<double> data) : data_(std::move(data)) {}

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator[](std::size_t i) {
    MAYO_ASSERT(i < data_.size(), "Vector index out of range");
    return data_[i];
  }
  double operator[](std::size_t i) const {
    MAYO_ASSERT(i < data_.size(), "Vector index out of range");
    return data_[i];
  }
  /// Bounds-checked element access (throws std::out_of_range).
  double& at(std::size_t i) { return data_.at(i); }
  double at(std::size_t i) const { return data_.at(i); }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  const std::vector<double>& std() const { return data_; }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  void resize(std::size_t n, double value = 0.0) { data_.resize(n, value); }
  void fill(double value);

  // Elementwise compound arithmetic; dimensions must agree.
  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(double scale);
  Vector& operator/=(double scale);

  /// Euclidean (L2) norm.
  double norm() const;
  /// Squared Euclidean norm.
  double norm2() const;
  /// Maximum absolute entry; 0 for the empty vector.
  double max_abs() const;
  /// Sum of all entries.
  double sum() const;

  friend bool operator==(const Vector&, const Vector&) = default;

 private:
  std::vector<double> data_;
};

Vector operator+(Vector lhs, const Vector& rhs);
Vector operator-(Vector lhs, const Vector& rhs);
Vector operator*(Vector lhs, double scale);
Vector operator*(double scale, Vector rhs);
Vector operator/(Vector lhs, double scale);
Vector operator-(Vector v);

/// Inner product; dimensions must agree.
double dot(const Vector& a, const Vector& b);
/// Euclidean distance between two points.
double distance(const Vector& a, const Vector& b);
/// Elementwise product.
Vector hadamard(const Vector& a, const Vector& b);
/// `a + scale * b` without constructing temporaries beyond the result.
Vector axpy(const Vector& a, double scale, const Vector& b);
/// Unit vector `e_k` of dimension `n` (1 at index `k`).
Vector unit(std::size_t n, std::size_t k);

std::ostream& operator<<(std::ostream& os, const Vector& v);

}  // namespace mayo::linalg
