#include "linalg/system_matrix.hpp"

#include <algorithm>

namespace mayo::linalg {

void SystemMatrix::begin_sparse(std::size_t n, bool with_jomega) {
  MAYO_ASSERT(n > 0, "SystemMatrix::begin_sparse: empty system");
  mode_ = Mode::kSparse;
  dense_real_ = nullptr;
  dense_jomega_ = nullptr;
  with_jomega_ = with_jomega;
  overflow_.clear();
  if (n_ == n && pattern_.size() == n && pattern_.nnz() > 0) {
    // Steady state: same topology size, keep the pattern and zero the
    // values so the stamp pass accumulates fresh.
    std::fill(values_.begin(), values_.end(), 0.0);
    std::fill(jomega_values_.begin(), jomega_values_.end(), 0.0);
    discovering_ = false;
  } else {
    pattern_ = CsrPattern();
    values_.clear();
    jomega_values_.clear();
    discovering_ = true;
  }
  n_ = n;
}

void SystemMatrix::add_sparse(int row, int col, double value,
                              double jomega_value) {
  if (!discovering_) {
    const int slot = pattern_.slot(row, col);
    if (slot >= 0) {
      values_[static_cast<std::size_t>(slot)] += value;
      if (with_jomega_)
        jomega_values_[static_cast<std::size_t>(slot)] += jomega_value;
      return;
    }
  }
  // Discovery, or a stamp outside the known pattern (topology change):
  // collect and fold in deterministically at end_stamp().
  overflow_.push_back({row, col, value, jomega_value});
}

void SystemMatrix::rebuild_pattern() {
  // Union of the existing pattern and every overflow position.  Rebuilt
  // from sorted (row, col) pairs, so the result depends only on the set
  // of stamped positions -- not on stamp order.
  std::vector<std::pair<int, int>> entries;
  entries.reserve(pattern_.nnz() + overflow_.size());
  for (std::size_t r = 0; r < pattern_.size(); ++r)
    for (int k = pattern_.row_ptr()[r]; k < pattern_.row_ptr()[r + 1]; ++k)
      entries.emplace_back(static_cast<int>(r), pattern_.col_idx()[k]);
  for (const Triplet& t : overflow_) entries.emplace_back(t.row, t.col);

  CsrPattern next(n_, std::move(entries));
  std::vector<double> values(next.nnz(), 0.0);
  std::vector<double> jomega(with_jomega_ ? next.nnz() : 0, 0.0);
  // Carry the already-accumulated slot values across, then fold in the
  // overflow adds.
  for (std::size_t r = 0; r < pattern_.size(); ++r) {
    for (int k = pattern_.row_ptr()[r]; k < pattern_.row_ptr()[r + 1]; ++k) {
      const int slot = next.slot(static_cast<int>(r), pattern_.col_idx()[k]);
      values[static_cast<std::size_t>(slot)] +=
          values_[static_cast<std::size_t>(k)];
      if (with_jomega_)
        jomega[static_cast<std::size_t>(slot)] +=
            jomega_values_[static_cast<std::size_t>(k)];
    }
  }
  for (const Triplet& t : overflow_) {
    const int slot = next.slot(t.row, t.col);
    values[static_cast<std::size_t>(slot)] += t.value;
    if (with_jomega_) jomega[static_cast<std::size_t>(slot)] += t.jomega_value;
  }
  pattern_ = std::move(next);
  values_ = std::move(values);
  jomega_values_ = std::move(jomega);
  overflow_.clear();
  discovering_ = false;
  ++epoch_;
}

void SystemMatrix::end_stamp() {
  if (mode_ != Mode::kSparse) return;
  if (discovering_ || !overflow_.empty()) rebuild_pattern();
}

}  // namespace mayo::linalg
