// mayo/linalg -- sparse LU with symbolic-once factorization for MNA.
//
// The simulation hot loop factors thousands of systems with the *same*
// sparsity pattern (one per Newton iteration, one per AC frequency probe)
// and only the numeric values change.  Dense `Lu` pays O(n^3) every time;
// this module splits the work the way production SPICE engines do:
//
//   CsrPattern   -- the immutable n x n sparsity pattern (CSR, sorted,
//                   deduplicated), built once per topology.
//   SymbolicLu   -- analysis computed ONCE per pattern: a deterministic
//                   threshold-Markowitz pivot order (full row+column
//                   permutation -- MNA voltage-source branch rows have
//                   structurally zero diagonals, so diagonal pivoting is
//                   not an option) and the complete L/U fill structure.
//                   The analysis runs the elimination on nonnegative
//                   magnitudes with *additive* updates, so the recorded
//                   structure is closed under any numeric values a later
//                   refactorization may carry on the same pattern.
//   SparseLu<T>  -- the numeric side (real and complex): a fixed-pattern
//                   up-looking refactorization and triangular solves that
//                   are allocation-free after `bind()` and bitwise
//                   deterministic (fixed elimination order, no data
//                   races, no reductions whose order could vary).
//
// Mirrors the dense `Lu::workspace()/refactor()/solve_into()` contract:
// exact-zero pivots throw SingularMatrixError with the failing
// elimination step, repeated refactorizations are bitwise-identical to a
// fresh bind + refactor, and `solve_into` never allocates.
#pragma once

#include <cmath>
#include <complex>
#include <cstddef>
#include <utility>
#include <vector>

#include "core/check.hpp"
#include "linalg/lu.hpp"
#include "obs/obs.hpp"

namespace mayo::linalg {

/// Immutable n x n sparsity pattern in compressed-sparse-row form.
/// Entries are sorted by (row, col) and deduplicated at construction.
class CsrPattern {
 public:
  CsrPattern() = default;

  /// Builds the pattern from (row, col) pairs; duplicates collapse.
  CsrPattern(std::size_t n, std::vector<std::pair<int, int>> entries);

  std::size_t size() const { return n_; }
  std::size_t nnz() const { return col_idx_.size(); }

  /// CSR slot of (row, col), or -1 when the position is not in the
  /// pattern.  Binary search within the row: O(log row_nnz).
  int slot(int row, int col) const;

  /// Row r occupies slots [row_ptr()[r], row_ptr()[r+1]).
  const std::vector<int>& row_ptr() const { return row_ptr_; }
  const std::vector<int>& col_idx() const { return col_idx_; }

  friend bool operator==(const CsrPattern&, const CsrPattern&) = default;

 private:
  std::size_t n_ = 0;
  std::vector<int> row_ptr_;  // n_ + 1 offsets
  std::vector<int> col_idx_;  // nnz column indices, ascending per row
};

/// Symbolic LU analysis of one CsrPattern: pivot order + fill structure,
/// computed once per topology and shared by every SparseLu refactor.
///
/// Pivots are chosen by threshold Markowitz on caller-supplied
/// nonnegative magnitudes (one per pattern slot; use representative
/// first-factorization values, e.g. |G| or |G| + |C|): among candidates
/// whose magnitude is at least `pivot_threshold` times their row maximum,
/// the lowest Markowitz cost (r_nnz-1)*(c_nnz-1) wins, ties broken by
/// (row, col) -- fully deterministic, no floating-point ordering beyond
/// the magnitudes themselves.  Fill is propagated structurally (a
/// zero-magnitude slot still creates fill), which is what makes the
/// structure valid for every later operating point on the same pattern.
class SymbolicLu {
 public:
  SymbolicLu() = default;

  /// Analyzes `pattern` with one nonnegative finite magnitude per slot.
  /// Throws SingularMatrixError(step) when no admissible pivot exists
  /// (structural or magnitude-zero singularity).
  void analyze(const CsrPattern& pattern, const double* magnitudes,
               double pivot_threshold = 0.1);

  void analyze(const CsrPattern& pattern,
               const std::vector<double>& magnitudes,
               double pivot_threshold = 0.1) {
    MAYO_CHECK_DIM(magnitudes.size(), pattern.nnz(),
                   "SymbolicLu::analyze magnitudes");
    analyze(pattern, magnitudes.data(), pivot_threshold);
  }

  bool analyzed() const { return n_ > 0; }
  std::size_t size() const { return n_; }

  /// Original row eliminated at each step (elimination order -> row).
  const std::vector<int>& row_perm() const { return perm_row_; }
  /// Original column of each elimination position (position -> col).
  const std::vector<int>& col_of_pos() const { return col_of_pos_; }

  /// Factor fill: total L + U entries (U includes the n diagonals).
  std::size_t lu_nnz() const { return l_pos_.size() + u_pos_.size(); }

  // -- internal structure consumed by SparseLu (stable accessors so the
  //    determinism tests can compare two analyses entry for entry) --
  const std::vector<int>& a_ptr() const { return a_ptr_; }
  const std::vector<int>& a_slot() const { return a_slot_; }
  const std::vector<int>& a_pos() const { return a_pos_; }
  const std::vector<int>& l_ptr() const { return l_ptr_; }
  const std::vector<int>& l_pos() const { return l_pos_; }
  const std::vector<int>& u_ptr() const { return u_ptr_; }
  const std::vector<int>& u_pos() const { return u_pos_; }

 private:
  std::size_t n_ = 0;
  std::vector<int> perm_row_;    // step -> original row
  std::vector<int> col_of_pos_;  // position -> original column
  // Input gather: for elimination row i, slots a_slot_[k] of the pattern
  // value array land at permuted positions a_pos_[k],
  // k in [a_ptr_[i], a_ptr_[i+1]).
  std::vector<int> a_ptr_, a_slot_, a_pos_;
  // L structure: per elimination row, update positions j < i, ascending.
  std::vector<int> l_ptr_, l_pos_;
  // U structure: per elimination row, active positions >= i, ascending --
  // the diagonal (position i) is always first.
  std::vector<int> u_ptr_, u_pos_;
};

/// Numeric side of the split factorization (T = double or
/// std::complex<double>).  `bind()` sizes every buffer (the only
/// allocating step); `refactor()`/`solve_into()` are allocation-free and
/// run a fixed elimination order, so repeated refactorizations are
/// bitwise-identical to a fresh factorization.  Not thread-safe per
/// instance (the scatter workspace is shared); use one SparseLu per
/// worker, like the dense Lu workspaces.
template <typename T>
class SparseLu {
 public:
  SparseLu() = default;

  /// Binds to a symbolic analysis, which must outlive this object and
  /// remain unchanged while bound.  Allocates the numeric buffers.
  void bind(const SymbolicLu& symbolic) {
    MAYO_ASSERT(symbolic.analyzed(), "SparseLu::bind: symbolic not analyzed");
    symbolic_ = &symbolic;
    lval_.assign(symbolic.l_pos().size(), T{});
    uval_.assign(symbolic.u_pos().size(), T{});
    work_.assign(symbolic.size(), T{});
  }

  bool bound() const { return symbolic_ != nullptr; }
  std::size_t size() const { return symbolic_ ? symbolic_->size() : 0; }

  /// Numeric refactorization from pattern values `a` (one entry per slot
  /// of the analyzed pattern).  Up-looking over elimination rows through
  /// a dense scatter workspace; throws SingularMatrixError on an exactly
  /// zero pivot and may be called again with better values afterwards.
  void refactor(const T* a) {
    MAYO_ASSERT(bound(), "SparseLu::refactor: bind() first");
    const SymbolicLu& s = *symbolic_;
    const std::size_t n = s.size();
    const int* a_ptr = s.a_ptr().data();
    const int* a_slot = s.a_slot().data();
    const int* a_pos = s.a_pos().data();
    const int* l_ptr = s.l_ptr().data();
    const int* l_pos = s.l_pos().data();
    const int* u_ptr = s.u_ptr().data();
    const int* u_pos = s.u_pos().data();
    T* __restrict__ w = work_.data();
    for (std::size_t i = 0; i < n; ++i) {
      // Scatter: zero exactly this row's structure, then gather A.
      for (int k = l_ptr[i]; k < l_ptr[i + 1]; ++k) w[l_pos[k]] = T{};
      for (int k = u_ptr[i]; k < u_ptr[i + 1]; ++k) w[u_pos[k]] = T{};
      for (int k = a_ptr[i]; k < a_ptr[i + 1]; ++k) w[a_pos[k]] = a[a_slot[k]];
      // Eliminate against the already-finished rows, ascending -- the
      // same order every call, so results are bitwise reproducible.
      for (int k = l_ptr[i]; k < l_ptr[i + 1]; ++k) {
        const int j = l_pos[k];
        const T factor = w[j] / uval_[u_ptr[j]];
        lval_[k] = factor;
        if (factor == T{}) continue;
        for (int m = u_ptr[j] + 1; m < u_ptr[j + 1]; ++m)
          w[u_pos[m]] -= factor * uval_[m];
      }
      // Gather U; the diagonal slot is first by construction.
      const T pivot = w[u_pos[u_ptr[i]]];
      if (pivot == T{}) throw SingularMatrixError(i);
      for (int k = u_ptr[i]; k < u_ptr[i + 1]; ++k) uval_[k] = w[u_pos[k]];
    }
    obs::registry().counters.sparse_refactor.add();
  }

  void refactor(const std::vector<T>& a,
                [[maybe_unused]] std::size_t pattern_nnz) {
    MAYO_CHECK_DIM(a.size(), pattern_nnz, "SparseLu::refactor values");
    refactor(a.data());
  }

  /// Allocation-free solve of A x = b; both buffers hold size() entries
  /// and must not alias (the permuted solution is built in the internal
  /// workspace, then scattered into `x`).
  void solve_into(const T* b, T* x) {
    MAYO_ASSERT(bound(), "SparseLu::solve_into: bind() first");
    const SymbolicLu& s = *symbolic_;
    const std::size_t n = s.size();
    const int* perm_row = s.row_perm().data();
    const int* col_of_pos = s.col_of_pos().data();
    const int* l_ptr = s.l_ptr().data();
    const int* l_pos = s.l_pos().data();
    const int* u_ptr = s.u_ptr().data();
    const int* u_pos = s.u_pos().data();
    T* __restrict__ y = work_.data();
    // Permute b and forward-substitute L (unit diagonal).
    for (std::size_t i = 0; i < n; ++i) {
      T acc = b[perm_row[i]];
      for (int k = l_ptr[i]; k < l_ptr[i + 1]; ++k)
        acc -= lval_[k] * y[l_pos[k]];
      y[i] = acc;
    }
    // Back-substitute U (diagonal first in each row).
    for (std::size_t ii = n; ii-- > 0;) {
      T acc = y[ii];
      const int diag = u_ptr[ii];
      for (int k = diag + 1; k < u_ptr[ii + 1]; ++k)
        acc -= uval_[k] * y[u_pos[k]];
      y[ii] = acc / uval_[diag];
    }
    // Undo the column permutation.
    for (std::size_t p = 0; p < n; ++p) x[col_of_pos[p]] = y[p];
    obs::registry().counters.sparse_solve.add();
  }

  /// Convenience allocating solve (tests and cold paths).
  std::vector<T> solve(const std::vector<T>& b) {
    MAYO_CHECK_DIM(b.size(), size(), "SparseLu::solve rhs");
    std::vector<T> x(size());
    solve_into(b.data(), x.data());
    return x;
  }

 private:
  const SymbolicLu* symbolic_ = nullptr;
  std::vector<T> lval_;  // L entries, unit diagonal implicit
  std::vector<T> uval_;  // U entries, diagonal first per row
  std::vector<T> work_;  // dense scatter workspace, size n
};

using SparseLud = SparseLu<double>;
using SparseLuc = SparseLu<std::complex<double>>;

}  // namespace mayo::linalg
