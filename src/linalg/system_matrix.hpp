// mayo/linalg -- backend-neutral stamping target for MNA assembly.
//
// Devices in src/circuit/stamp.hpp accumulate conductances into "the
// system matrix" without knowing how it is stored.  SystemMatrix is that
// target, in one of two modes:
//
//   dense  -- binds caller-owned Matrixd buffers (the dense LU
//             workspaces); add() forwards with the identical `+=` the
//             devices used before this boundary existed, so the dense
//             path is bit-for-bit unchanged.
//   sparse -- owns one union CSR pattern with parallel value arrays for
//             the real (G) part and the j*omega-scaled (C) part.  The
//             first stamp pass discovers the pattern from triplets;
//             every later pass over the same topology is a zero + O(log)
//             slot write per stamp.  An add outside the known pattern
//             (topology change) is collected and triggers a
//             deterministic pattern rebuild at end_stamp(), bumping
//             `pattern_epoch()` so cached SymbolicLu analyses invalidate.
//
// There is no virtual dispatch: one branch per add in sparse mode, a
// pointer indirection in dense mode, both far below the cost of the
// device evaluation producing the value.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/check.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"

namespace mayo::linalg {

/// Linear-solver backend selection for the simulation engines.
enum class SolverBackend {
  kAuto,    ///< dense below sparse_threshold, sparse at or above it
  kDense,   ///< force the dense LU path
  kSparse,  ///< force the sparse symbolic-once path
};

/// kAuto switches to sparse at this system size.  Opamp-scale netlists
/// (tens of unknowns) stay on the dense fast path; the scaling netlists
/// and anything mesh-sized go sparse (see BENCH_sparse_mna.json for the
/// measured crossover).
inline constexpr std::size_t kDefaultSparseThreshold = 64;

/// Backend knobs threaded through DcOptions / TranOptions / AcSession
/// and the circuit-model Options.
struct SolverOptions {
  SolverBackend backend = SolverBackend::kAuto;
  std::size_t sparse_threshold = kDefaultSparseThreshold;
};

/// The backend-selection rule, in one place.
inline bool use_sparse(const SolverOptions& options, std::size_t n) {
  if (options.backend == SolverBackend::kDense) return false;
  if (options.backend == SolverBackend::kSparse) return true;
  return n >= options.sparse_threshold;
}

class SystemMatrix {
 public:
  SystemMatrix() = default;

  /// Dense mode: adds forward into `real` (and `jomega` when the engine
  /// carries a separate omega-scaled part, as the AC session does).  The
  /// buffers stay caller-owned and caller-zeroed -- exactly the dense
  /// engines' pre-boundary behavior.
  void bind_dense(Matrixd& real, Matrixd* jomega = nullptr) {
    mode_ = Mode::kDense;
    n_ = real.rows();
    dense_real_ = &real;
    dense_jomega_ = jomega;
  }

  /// Sparse mode: starts a stamp pass for an n x n system.  Reuses the
  /// existing pattern when the size matches (zeroing the value arrays);
  /// otherwise the pass runs in discovery mode collecting triplets.
  void begin_sparse(std::size_t n, bool with_jomega);

  /// Finalizes a sparse stamp pass: builds or rebuilds the union pattern
  /// when discovery or an out-of-pattern add occurred (bumping the
  /// epoch).  No-op in dense mode and on a steady-state sparse pass.
  void end_stamp();

  bool sparse() const { return mode_ == Mode::kSparse; }
  std::size_t size() const { return n_; }

  /// Accumulates into the real (G) part.
  void add(int row, int col, double value) {
    MAYO_ASSERT(row >= 0 && static_cast<std::size_t>(row) < n_,
                "SystemMatrix::add: row out of range");
    MAYO_ASSERT(col >= 0 && static_cast<std::size_t>(col) < n_,
                "SystemMatrix::add: col out of range");
    if (mode_ == Mode::kDense) {
      (*dense_real_)(row, col) += value;
      return;
    }
    add_sparse(row, col, value, 0.0);
  }

  /// Accumulates into the j*omega-scaled (C) part.
  void add_jomega(int row, int col, double value) {
    MAYO_ASSERT(row >= 0 && static_cast<std::size_t>(row) < n_,
                "SystemMatrix::add_jomega: row out of range");
    MAYO_ASSERT(col >= 0 && static_cast<std::size_t>(col) < n_,
                "SystemMatrix::add_jomega: col out of range");
    if (mode_ == Mode::kDense) {
      MAYO_ASSERT(dense_jomega_ != nullptr,
                  "SystemMatrix::add_jomega: no jomega target bound");
      (*dense_jomega_)(row, col) += value;
      return;
    }
    add_sparse(row, col, 0.0, value);
  }

  // -- sparse-mode accessors (valid after end_stamp()) --
  const CsrPattern& pattern() const { return pattern_; }
  const std::vector<double>& values() const { return values_; }
  const std::vector<double>& jomega_values() const { return jomega_values_; }

  /// Bumped every time the sparse pattern is (re)built; a cached
  /// SymbolicLu stays valid exactly while the epoch is unchanged.
  std::uint64_t pattern_epoch() const { return epoch_; }

 private:
  enum class Mode { kUnbound, kDense, kSparse };

  void add_sparse(int row, int col, double value, double jomega_value);
  void rebuild_pattern();

  Mode mode_ = Mode::kUnbound;
  std::size_t n_ = 0;

  // dense mode
  Matrixd* dense_real_ = nullptr;
  Matrixd* dense_jomega_ = nullptr;

  // sparse mode
  bool with_jomega_ = false;
  bool discovering_ = false;
  CsrPattern pattern_;
  std::vector<double> values_;         // G per pattern slot
  std::vector<double> jomega_values_;  // C per pattern slot (may be empty)
  // (row, col, g, c) adds collected during discovery or after an
  // out-of-pattern stamp; folded into the pattern at end_stamp().
  struct Triplet {
    int row;
    int col;
    double value;
    double jomega_value;
  };
  std::vector<Triplet> overflow_;
  std::uint64_t epoch_ = 0;
};

}  // namespace mayo::linalg
