// mayo/linalg -- Householder QR and least-squares solves.
//
// Used by the core library for the minimum-norm updates of the worst-case
// distance iteration and for fitting linearized performance models from
// finite-difference samples.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace mayo::linalg {

/// Householder QR factorization of an m x n matrix with m >= n.
class Qr {
 public:
  /// Factorizes `a` (m >= n required). Throws std::invalid_argument on
  /// shape violations and SingularMatrixError on rank deficiency.
  explicit Qr(Matrixd a);

  std::size_t rows() const { return qr_.rows(); }
  std::size_t cols() const { return qr_.cols(); }

  /// Least-squares solution of min ||A x - b||_2.
  Vector solve(const Vector& b) const;

  /// Applies Q^T to a vector of length m.
  Vector apply_qt(Vector b) const;

  /// Upper-triangular factor R (n x n).
  Matrixd r() const;

 private:
  Matrixd qr_;      // Householder vectors at/below the diagonal, R above.
  Vector betas_;    // Householder scaling coefficients (2 / v^T v).
  Vector rdiag_;    // Diagonal of R (the slot in qr_ holds the vector head).
};

/// min ||x||_2 subject to a single linear equation g^T x = rhs.
/// Returns g * rhs / (g^T g). Throws std::domain_error if g == 0.
Vector min_norm_on_hyperplane(const Vector& g, double rhs);

/// Least-squares solve of A x = b via QR (convenience wrapper).
Vector lstsq(const Matrixd& a, const Vector& b);

}  // namespace mayo::linalg
