#include "linalg/least_squares.hpp"

#include <cmath>
#include <span>
#include <stdexcept>

#include "core/check.hpp"
#include "linalg/lu.hpp"

namespace mayo::linalg {

Qr::Qr(Matrixd a) : qr_(std::move(a)), betas_(qr_.cols()), rdiag_(qr_.cols()) {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  if (m < n) throw std::invalid_argument("Qr: requires rows >= cols");
  MAYO_CHECK_FINITE((std::span<const double>(qr_.data(), m * n)),
                    "Qr: input matrix");
  // Rank-deficiency threshold relative to the largest column norm.
  double scale = 0.0;
  for (std::size_t c = 0; c < n; ++c) {
    double norm2 = 0.0;
    for (std::size_t r = 0; r < m; ++r) norm2 += qr_(r, c) * qr_(r, c);
    scale = std::max(scale, std::sqrt(norm2));
  }
  const double tol = 1e-12 * scale;
  for (std::size_t k = 0; k < n; ++k) {
    double norm2 = 0.0;
    for (std::size_t i = k; i < m; ++i) norm2 += qr_(i, k) * qr_(i, k);
    const double norm = std::sqrt(norm2);
    if (norm <= tol) throw SingularMatrixError(k);
    const double alpha = qr_(k, k) >= 0.0 ? -norm : norm;
    qr_(k, k) -= alpha;  // v head; tail already in place below the diagonal.
    rdiag_[k] = alpha;
    double vtv = 0.0;
    for (std::size_t i = k; i < m; ++i) vtv += qr_(i, k) * qr_(i, k);
    betas_[k] = vtv > 0.0 ? 2.0 / vtv : 0.0;
    for (std::size_t c = k + 1; c < n; ++c) {
      double dot = 0.0;
      for (std::size_t i = k; i < m; ++i) dot += qr_(i, k) * qr_(i, c);
      const double s = betas_[k] * dot;
      for (std::size_t i = k; i < m; ++i) qr_(i, c) -= s * qr_(i, k);
    }
  }
}

Vector Qr::apply_qt(Vector b) const {
  const std::size_t m = rows();
  const std::size_t n = cols();
  if (b.size() != m) throw std::invalid_argument("Qr::apply_qt: size mismatch");
  for (std::size_t k = 0; k < n; ++k) {
    double dot = 0.0;
    for (std::size_t i = k; i < m; ++i) dot += qr_(i, k) * b[i];
    const double s = betas_[k] * dot;
    for (std::size_t i = k; i < m; ++i) b[i] -= s * qr_(i, k);
  }
  return b;
}

Vector Qr::solve(const Vector& b) const {
  const std::size_t n = cols();
  Vector y = apply_qt(b);
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= qr_(ii, j) * x[j];
    const double d = rdiag_[ii];
    if (d == 0.0) throw SingularMatrixError(ii);
    x[ii] = acc / d;
  }
  return x;
}

Matrixd Qr::r() const {
  const std::size_t n = cols();
  Matrixd out(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    out(i, i) = rdiag_[i];
    for (std::size_t j = i + 1; j < n; ++j) out(i, j) = qr_(i, j);
  }
  return out;
}

Vector min_norm_on_hyperplane(const Vector& g, double rhs) {
  const double g2 = g.norm2();
  if (g2 == 0.0)
    throw std::domain_error("min_norm_on_hyperplane: zero gradient");
  return g * (rhs / g2);
}

Vector lstsq(const Matrixd& a, const Vector& b) { return Qr(a).solve(b); }

}  // namespace mayo::linalg
