// mayo/linalg -- allocation-free in-place kernels for the batched hot path.
//
// Every routine writes into caller-owned storage; none allocates.  Bitwise
// contract: `gemv_into` accumulates each output element in ascending column
// order, matching the scalar inner-product loops it replaces
// (SampleSet::dot, LinearYieldModel's eq.-17 sweep), so porting a consumer
// from per-sample dots to one gemv cannot change a single result bit.
// `cholesky_solve_into` performs the identical substitution sequence as
// Cholesky::solve, reusing `out` for the intermediate forward solve.
#pragma once

#include "linalg/block.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace mayo::linalg {

/// y[r] = sum_c m(r, c) * x[c], accumulated in ascending c.
/// `x` must have m.cols() entries, `y` m.rows() entries.
void gemv_into(ConstMatrixView m, const double* x, double* y);

/// Checked Vector form of gemv_into; y must be pre-sized to m.rows().
void gemv_into(ConstMatrixView m, const Vector& x, Vector& y);

/// y += alpha * x (elementwise); sizes must agree.
void axpy_into(Vector& y, double alpha, const Vector& x);

/// y = x, then y += alpha * z in one pass (a fused copy-axpy); all three
/// must share one size.
void copy_axpy_into(Vector& y, const Vector& x, double alpha, const Vector& z);

/// Solves A out = b for the factorization chol of A, without allocating:
/// forward substitution L y = b into `out`, then back substitution
/// L^T x = y in place.  `out` must be pre-sized to chol.size().
void cholesky_solve_into(const Cholesky& chol, const Vector& b, Vector& out);

/// a[i] = complex(g[i], omega * c[i]) for `n` entries: assembles the AC
/// system A = G + j omega C from the session's frequency-independent real
/// stamps in one pass over caller storage.  Works on raw buffers so the
/// same kernel serves matrices (n = rows * cols) and vectors.
void assemble_complex_into(const double* g, const double* c, double omega,
                           std::complex<double>* a, std::size_t n);

/// Checked matrix form: a = g + j omega c; all three must share one shape.
void assemble_complex_into(const Matrixd& g, const Matrixd& c, double omega,
                           Matrixc& a);

}  // namespace mayo::linalg
