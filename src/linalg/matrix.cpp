#include "linalg/matrix.hpp"

#include <ostream>

namespace mayo::linalg {

Vector operator*(const Matrixd& m, const Vector& v) {
  if (m.cols() != v.size())
    throw std::invalid_argument("Matrix-vector product dimension mismatch");
  Vector out(m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.row(r);
    double acc = 0.0;
    for (std::size_t c = 0; c < m.cols(); ++c) acc += row[c] * v[c];
    out[r] = acc;
  }
  return out;
}

Vector mul_transposed(const Matrixd& m, const Vector& v) {
  if (m.rows() != v.size())
    throw std::invalid_argument("mul_transposed dimension mismatch");
  Vector out(m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.row(r);
    const double vr = v[r];
    if (vr == 0.0) continue;
    for (std::size_t c = 0; c < m.cols(); ++c) out[c] += row[c] * vr;
  }
  return out;
}

VectorC operator*(const Matrixc& m, const VectorC& v) {
  if (m.cols() != v.size())
    throw std::invalid_argument("Matrix-vector product dimension mismatch");
  VectorC out(m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    std::complex<double> acc{};
    const std::complex<double>* row = m.row(r);
    for (std::size_t c = 0; c < m.cols(); ++c) acc += row[c] * v[c];
    out[r] = acc;
  }
  return out;
}

Matrixd outer(const Vector& a, const Vector& b) {
  Matrixd out(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r)
    for (std::size_t c = 0; c < b.size(); ++c) out(r, c) = a[r] * b[c];
  return out;
}

std::ostream& operator<<(std::ostream& os, const Matrixd& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << (r == 0 ? "[[" : " [");
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (c > 0) os << ", ";
      os << m(r, c);
    }
    os << (r + 1 == m.rows() ? "]]" : "]\n");
  }
  return os;
}

}  // namespace mayo::linalg
