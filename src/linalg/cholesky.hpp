// mayo/linalg -- Cholesky factorization of symmetric positive definite
// matrices.
//
// Used by the statistics layer to obtain the factor G(d) of the covariance
// matrix C(d) = G G^T (paper eq. 11), which maps standard-normal samples
// into correlated statistical parameters.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace mayo::linalg {

/// Lower-triangular Cholesky factorization A = L L^T of an SPD matrix.
class Cholesky {
 public:
  /// Factorizes `a`; throws std::domain_error if `a` is not positive
  /// definite (non-positive pivot encountered).
  explicit Cholesky(const Matrixd& a);

  std::size_t size() const { return l_.rows(); }

  /// The lower-triangular factor L.
  const Matrixd& factor() const { return l_; }

  /// Solves A x = b via forward/back substitution.
  Vector solve(const Vector& b) const;

  /// L * v -- maps a standard-normal vector to covariance A.
  Vector apply_factor(const Vector& v) const;

  /// Solves L y = v (forward substitution only) -- maps a correlated vector
  /// back to standard-normal coordinates, the inverse of apply_factor.
  Vector apply_factor_inverse(const Vector& v) const;

  /// log(det A) = 2 * sum log L_ii.
  double log_determinant() const;

 private:
  Matrixd l_;
};

/// True if `a` is symmetric within `tol` (max abs asymmetry).
bool is_symmetric(const Matrixd& a, double tol = 1e-12);

}  // namespace mayo::linalg
