#include "linalg/cholesky.hpp"

#include <cmath>
#include <span>
#include <stdexcept>

#include "core/check.hpp"

namespace mayo::linalg {

Cholesky::Cholesky(const Matrixd& a) : l_(a.rows(), a.cols()) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("Cholesky: matrix must be square");
  // A non-finite entry would propagate silently: NaN fails the diag <= 0
  // test below and sqrt(NaN) flows into every downstream solve.
  MAYO_CHECK_FINITE(
      (std::span<const double>(a.data(), a.rows() * a.cols())),
      "Cholesky: input matrix");
  if (!is_symmetric(a, 1e-9 * std::max(1.0, a.max_abs())))
    throw std::invalid_argument("Cholesky: matrix must be symmetric");
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    if (diag <= 0.0)
      throw std::domain_error("Cholesky: matrix not positive definite at row " +
                              std::to_string(j));
    l_(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l_(i, k) * l_(j, k);
      l_(i, j) = acc / l_(j, j);
    }
  }
}

Vector Cholesky::solve(const Vector& b) const {
  const std::size_t n = size();
  if (b.size() != n) throw std::invalid_argument("Cholesky::solve: rhs size mismatch");
  // L y = b
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= l_(i, j) * y[j];
    y[i] = acc / l_(i, i);
  }
  // L^T x = y
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= l_(j, ii) * x[j];
    x[ii] = acc / l_(ii, ii);
  }
  return x;
}

Vector Cholesky::apply_factor(const Vector& v) const {
  const std::size_t n = size();
  if (v.size() != n)
    throw std::invalid_argument("Cholesky::apply_factor: size mismatch");
  Vector out(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j <= i; ++j) acc += l_(i, j) * v[j];
    out[i] = acc;
  }
  return out;
}

Vector Cholesky::apply_factor_inverse(const Vector& v) const {
  const std::size_t n = size();
  if (v.size() != n)
    throw std::invalid_argument("Cholesky::apply_factor_inverse: size mismatch");
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = v[i];
    for (std::size_t j = 0; j < i; ++j) acc -= l_(i, j) * y[j];
    y[i] = acc / l_(i, i);
  }
  return y;
}

double Cholesky::log_determinant() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < size(); ++i) acc += std::log(l_(i, i));
  return 2.0 * acc;
}

bool is_symmetric(const Matrixd& a, double tol) {
  if (a.rows() != a.cols()) return false;
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = r + 1; c < a.cols(); ++c)
      if (std::abs(a(r, c) - a(c, r)) > tol) return false;
  return true;
}

}  // namespace mayo::linalg
