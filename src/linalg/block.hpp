// mayo/linalg -- lightweight row-major matrix views for block evaluation.
//
// The batched evaluation spine passes sample blocks down the layers without
// copying: a view is a (pointer, rows, cols, row stride) quadruple over
// storage owned elsewhere (a Matrixd, a SampleSet, a workspace).  Views are
// trivially copyable; the viewed storage must outlive them.  `row_stride`
// permits views over a column subrange of a wider matrix, though the common
// case is a contiguous row block (stride == cols of the parent).
#pragma once

#include <cstddef>

#include "core/check.hpp"
#include "linalg/matrix.hpp"

namespace mayo::linalg {

/// Read-only view of a row-major double matrix.
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const double* data, std::size_t rows, std::size_t cols,
                  std::size_t row_stride)
      : data_(data), rows_(rows), cols_(cols), stride_(row_stride) {
    MAYO_ASSERT(row_stride >= cols, "ConstMatrixView: stride < cols");
  }
  /// Whole-matrix view (implicit: any Matrixd argument becomes a view).
  ConstMatrixView(const Matrixd& m)  // NOLINT(google-explicit-constructor)
      : data_(m.data()), rows_(m.rows()), cols_(m.cols()), stride_(m.cols()) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t row_stride() const { return stride_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  const double* row(std::size_t r) const {
    MAYO_ASSERT(r < rows_, "ConstMatrixView row index out of range");
    return data_ + r * stride_;
  }
  double operator()(std::size_t r, std::size_t c) const {
    MAYO_ASSERT(r < rows_ && c < cols_, "ConstMatrixView index out of range");
    return data_[r * stride_ + c];
  }

  /// Sub-view of `count` consecutive rows starting at `first`.
  ConstMatrixView middle_rows(std::size_t first, std::size_t count) const {
    MAYO_ASSERT(first + count <= rows_,
                "ConstMatrixView::middle_rows out of range");
    return ConstMatrixView(data_ + first * stride_, count, cols_, stride_);
  }

 private:
  const double* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
};

/// Mutable view of a row-major double matrix.
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(double* data, std::size_t rows, std::size_t cols,
             std::size_t row_stride)
      : data_(data), rows_(rows), cols_(cols), stride_(row_stride) {
    MAYO_ASSERT(row_stride >= cols, "MatrixView: stride < cols");
  }
  MatrixView(Matrixd& m)  // NOLINT(google-explicit-constructor)
      : data_(m.data()), rows_(m.rows()), cols_(m.cols()), stride_(m.cols()) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t row_stride() const { return stride_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double* row(std::size_t r) const {
    MAYO_ASSERT(r < rows_, "MatrixView row index out of range");
    return data_ + r * stride_;
  }
  double& operator()(std::size_t r, std::size_t c) const {
    MAYO_ASSERT(r < rows_ && c < cols_, "MatrixView index out of range");
    return data_[r * stride_ + c];
  }

  MatrixView middle_rows(std::size_t first, std::size_t count) const {
    MAYO_ASSERT(first + count <= rows_, "MatrixView::middle_rows out of range");
    return MatrixView(data_ + first * stride_, count, cols_, stride_);
  }

  /// Every mutable view also reads.
  operator ConstMatrixView() const {  // NOLINT(google-explicit-constructor)
    return ConstMatrixView(data_, rows_, cols_, stride_);
  }

 private:
  double* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
};

}  // namespace mayo::linalg
