// mayo/linalg -- dense matrix type, templated on the scalar.
//
// Row-major dense matrix used for Jacobians, covariance matrices and the
// MNA system matrices of the circuit simulator (real for DC, complex for
// AC analysis).  Value semantics throughout.
#pragma once

#include <complex>
#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <vector>

#include "core/check.hpp"
#include "linalg/vector.hpp"

namespace mayo::linalg {

/// Dense row-major matrix over scalar type `T` (double or complex<double>).
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  /// `rows` x `cols` zero matrix.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, T{}) {}
  /// `rows` x `cols` matrix filled with `value`.
  Matrix(std::size_t rows, std::size_t cols, T value)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) {
    MAYO_ASSERT(r < rows_ && c < cols_, "Matrix index out of range");
    return data_[r * cols_ + c];
  }
  T operator()(std::size_t r, std::size_t c) const {
    MAYO_ASSERT(r < rows_ && c < cols_, "Matrix index out of range");
    return data_[r * cols_ + c];
  }

  T& at(std::size_t r, std::size_t c) {
    check_index(r, c);
    return data_[r * cols_ + c];
  }
  T at(std::size_t r, std::size_t c) const {
    check_index(r, c);
    return data_[r * cols_ + c];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  /// Pointer to the first element of row `r`.
  T* row(std::size_t r) {
    MAYO_ASSERT(r < rows_, "Matrix row index out of range");
    return data_.data() + r * cols_;
  }
  const T* row(std::size_t r) const {
    MAYO_ASSERT(r < rows_, "Matrix row index out of range");
    return data_.data() + r * cols_;
  }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }
  /// Resets every entry to zero while keeping the shape.
  void set_zero() { fill(T{}); }

  /// n x n identity.
  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }
  /// Square matrix with `diag` on the diagonal.
  static Matrix diagonal(const std::vector<T>& diag) {
    Matrix m(diag.size(), diag.size());
    for (std::size_t i = 0; i < diag.size(); ++i) m(i, i) = diag[i];
    return m;
  }

  Matrix& operator+=(const Matrix& rhs) {
    check_same_shape(rhs, "operator+=");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
    return *this;
  }
  Matrix& operator-=(const Matrix& rhs) {
    check_same_shape(rhs, "operator-=");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
    return *this;
  }
  Matrix& operator*=(T scale) {
    for (T& x : data_) x *= scale;
    return *this;
  }

  /// Matrix transpose (copy).
  Matrix transposed() const {
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
    return out;
  }

  /// Maximum absolute entry (for complex: max modulus).
  double max_abs() const {
    double acc = 0.0;
    for (const T& x : data_) acc = std::max(acc, std::abs(x));
    return acc;
  }

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  void check_index(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at: index out of range");
  }
  void check_same_shape(const Matrix& rhs, const char* op) const {
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
      throw std::invalid_argument(std::string("Matrix shape mismatch in ") + op);
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using Matrixd = Matrix<double>;
using Matrixc = Matrix<std::complex<double>>;
using VectorC = std::vector<std::complex<double>>;

template <typename T>
Matrix<T> operator+(Matrix<T> lhs, const Matrix<T>& rhs) { return lhs += rhs; }
template <typename T>
Matrix<T> operator-(Matrix<T> lhs, const Matrix<T>& rhs) { return lhs -= rhs; }
template <typename T>
Matrix<T> operator*(Matrix<T> lhs, T scale) { return lhs *= scale; }

/// Dense matrix-matrix product.
template <typename T>
Matrix<T> operator*(const Matrix<T>& a, const Matrix<T>& b) {
  if (a.cols() != b.rows())
    throw std::invalid_argument("Matrix product dimension mismatch");
  Matrix<T> out(a.rows(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const T aik = a(r, k);
      if (aik == T{}) continue;
      for (std::size_t c = 0; c < b.cols(); ++c) out(r, c) += aik * b(k, c);
    }
  }
  return out;
}

/// Matrix-vector product (real).
Vector operator*(const Matrixd& m, const Vector& v);
/// `m^T * v` without forming the transpose (real).
Vector mul_transposed(const Matrixd& m, const Vector& v);
/// Complex matrix times complex vector.
VectorC operator*(const Matrixc& m, const VectorC& v);
/// Outer product a * b^T.
Matrixd outer(const Vector& a, const Vector& b);

std::ostream& operator<<(std::ostream& os, const Matrixd& m);

}  // namespace mayo::linalg
