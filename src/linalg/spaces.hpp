// mayo/linalg -- compile-time tagged vector spaces (paper eq. 11-12).
//
// The whole optimizer rests on the discipline that four different vector
// spaces never mix:
//
//   Design        d      -- sizing parameters, box-bounded
//   StatUnit      s_hat  -- standard-normal statistical coordinates N(0, I)
//   StatPhysical  s      -- physical statistical parameters, s = G(d) s_hat + s0
//   Operating     theta  -- operating conditions (temperature, supply)
//
// plus the two output spaces `Performance` (raw f values) and `Margin`
// (+/-(f - f_b), the sign-normalized form every algorithm consumes).  All
// of them used to travel as bare linalg::Vector, so swapping s_hat for s
// (or d for theta) compiled silently and surfaced only as a wrong yield
// number.  Tagged<Space> makes each space a distinct type: the wrapper
// stores a plain Vector (zero-cost, verified by static_assert below) and
// forwards the arithmetic that is closed within one space, while any
// cross-space operation refuses to compile.
//
// Allowed crossings are named functions, not casts:
//
//   StatUnit -> StatPhysical   CovarianceModel::to_physical{,_block} (eq. 11)
//   StatPhysical -> StatUnit   CovarianceModel::to_standard
//   (fresh) -> StatUnit        stats::SampleSet / Evaluator::nominal_s_hat
//   StatPhysical -> Performance  PerformanceModel::evaluate{,_batch} (eq. 14)
//   Performance -> Margin      Specification::margin via the Evaluator
//
// Escape hatch: .raw() exposes the underlying Vector (or matrix view) for
// linalg interop.  tools/lint.py rule `space-discipline` restricts .raw()
// to the whitelisted crossing sites above plus lines annotated with
// "// space-ok: <reason>", so every untagging is explicit and greppable.
// tests/compile_fail/ proves the forbidden mixings actually fail to
// compile.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <utility>

#include "linalg/block.hpp"
#include "linalg/vector.hpp"

namespace mayo::space {

// Tag types.  Adding a space = adding a tag here plus an alias below (see
// README "Adding a space or crossing").
struct Design {};        ///< d
struct StatUnit {};      ///< s_hat, distributed N(0, I) by construction
struct StatPhysical {};  ///< s = G(d) s_hat + s0
struct Operating {};     ///< theta
struct Performance {};   ///< f(d, s, theta)
struct Margin {};        ///< +/-(f - f_b) >= 0 iff the spec holds

}  // namespace mayo::space

namespace mayo::linalg {

/// Strong typedef of Vector for one vector space.  Everything that stays
/// inside the space (element access, norms, +, -, scaling) is forwarded;
/// there is deliberately NO conversion between different Tagged<> types
/// and NO implicit conversion from or to Vector.
template <class Space>
class Tagged {
 public:
  using space_type = Space;

  Tagged() = default;
  /// Zero vector of dimension `n`.
  explicit Tagged(std::size_t n) : v_(n) {}
  Tagged(std::size_t n, double value) : v_(n, value) {}
  Tagged(std::initializer_list<double> init) : v_(init) {}
  /// Tags an untyped vector.  Explicit on purpose: minting a space value
  /// from raw storage must be visible at the call site.
  explicit Tagged(Vector v) : v_(std::move(v)) {}

  std::size_t size() const { return v_.size(); }
  bool empty() const { return v_.empty(); }

  double& operator[](std::size_t i) { return v_[i]; }
  double operator[](std::size_t i) const { return v_[i]; }
  double& at(std::size_t i) { return v_.at(i); }
  double at(std::size_t i) const { return v_.at(i); }

  double* data() { return v_.data(); }
  const double* data() const { return v_.data(); }

  auto begin() { return v_.begin(); }
  auto end() { return v_.end(); }
  auto begin() const { return v_.begin(); }
  auto end() const { return v_.end(); }

  void resize(std::size_t n, double value = 0.0) { v_.resize(n, value); }
  void fill(double value) { v_.fill(value); }

  Tagged& operator+=(const Tagged& rhs) { v_ += rhs.v_; return *this; }
  Tagged& operator-=(const Tagged& rhs) { v_ -= rhs.v_; return *this; }
  Tagged& operator*=(double scale) { v_ *= scale; return *this; }
  Tagged& operator/=(double scale) { v_ /= scale; return *this; }

  double norm() const { return v_.norm(); }
  double norm2() const { return v_.norm2(); }
  double max_abs() const { return v_.max_abs(); }
  double sum() const { return v_.sum(); }

  /// Unit vector e_k of this space.
  static Tagged unit(std::size_t n, std::size_t k) {
    return Tagged(linalg::unit(n, k));
  }

  friend bool operator==(const Tagged&, const Tagged&) = default;

  /// The underlying storage -- the ONLY way out of the type system.
  /// Restricted by the `space-discipline` lint rule (see module docstring).
  Vector& raw() & { return v_; }
  const Vector& raw() const& { return v_; }
  Vector&& raw() && { return std::move(v_); }

 private:
  Vector v_;
};

// Zero-cost: a tagged vector is layout-identical to the vector it wraps.
static_assert(sizeof(Tagged<space::Design>) == sizeof(Vector),
              "Tagged<> must add no storage");

// In-space arithmetic (dimensions must agree, as for Vector).
template <class S>
inline Tagged<S> operator+(Tagged<S> lhs, const Tagged<S>& rhs) {
  lhs += rhs;
  return lhs;
}
template <class S>
inline Tagged<S> operator-(Tagged<S> lhs, const Tagged<S>& rhs) {
  lhs -= rhs;
  return lhs;
}
template <class S>
inline Tagged<S> operator*(Tagged<S> lhs, double scale) {
  lhs *= scale;
  return lhs;
}
template <class S>
inline Tagged<S> operator*(double scale, Tagged<S> rhs) {
  rhs *= scale;
  return rhs;
}
template <class S>
inline Tagged<S> operator/(Tagged<S> lhs, double scale) {
  lhs /= scale;
  return lhs;
}
template <class S>
inline Tagged<S> operator-(Tagged<S> v) {
  v *= -1.0;
  return v;
}

/// Inner product within one space.
template <class S>
inline double dot(const Tagged<S>& a, const Tagged<S>& b) {
  return dot(a.raw(), b.raw());
}
/// Euclidean distance within one space.
template <class S>
inline double distance(const Tagged<S>& a, const Tagged<S>& b) {
  return distance(a.raw(), b.raw());
}
/// `a + scale * b` within one space.
template <class S>
inline Tagged<S> axpy(const Tagged<S>& a, double scale, const Tagged<S>& b) {
  return Tagged<S>(axpy(a.raw(), scale, b.raw()));
}

template <class S>
inline std::ostream& operator<<(std::ostream& os, const Tagged<S>& v) {
  return os << v.raw();
}

/// Read-only row-block view whose rows are vectors of one space (the
/// tagged face of ConstMatrixView for the batched evaluation spine).
template <class Space>
class TaggedConstView {
 public:
  using space_type = Space;

  TaggedConstView() = default;
  /// Tags an untyped view; explicit for the same reason as Tagged(Vector).
  explicit TaggedConstView(ConstMatrixView view) : view_(view) {}

  std::size_t rows() const { return view_.rows(); }
  std::size_t cols() const { return view_.cols(); }
  std::size_t row_stride() const { return view_.row_stride(); }
  bool empty() const { return view_.empty(); }

  const double* row(std::size_t r) const { return view_.row(r); }
  double operator()(std::size_t r, std::size_t c) const { return view_(r, c); }

  TaggedConstView middle_rows(std::size_t first, std::size_t count) const {
    return TaggedConstView(view_.middle_rows(first, count));
  }

  /// Row r as a tagged vector (copies; rows are cheap in this library).
  Tagged<Space> row_vector(std::size_t r) const {
    Tagged<Space> v(cols());
    const double* src = row(r);
    for (std::size_t i = 0; i < cols(); ++i) v[i] = src[i];
    return v;
  }

  /// Untyped view; restricted by the `space-discipline` lint rule.
  ConstMatrixView raw() const { return view_; }

 private:
  ConstMatrixView view_;
};

/// Mutable row-block view whose rows are vectors of one space.
template <class Space>
class TaggedView {
 public:
  using space_type = Space;

  TaggedView() = default;
  explicit TaggedView(MatrixView view) : view_(view) {}

  std::size_t rows() const { return view_.rows(); }
  std::size_t cols() const { return view_.cols(); }
  std::size_t row_stride() const { return view_.row_stride(); }
  bool empty() const { return view_.empty(); }

  double* row(std::size_t r) const { return view_.row(r); }
  double& operator()(std::size_t r, std::size_t c) const { return view_(r, c); }

  TaggedView middle_rows(std::size_t first, std::size_t count) const {
    return TaggedView(view_.middle_rows(first, count));
  }

  /// Every mutable view also reads.
  operator TaggedConstView<Space>() const {  // NOLINT(google-explicit-constructor)
    return TaggedConstView<Space>(ConstMatrixView(view_));
  }

  /// Untyped view; restricted by the `space-discipline` lint rule.
  MatrixView raw() const { return view_; }

 private:
  MatrixView view_;
};

static_assert(sizeof(TaggedConstView<space::StatUnit>) ==
                  sizeof(ConstMatrixView),
              "TaggedConstView<> must add no storage");

// The canonical spellings used across the library.
using DesignVec = Tagged<space::Design>;          ///< d
using StatUnitVec = Tagged<space::StatUnit>;      ///< s_hat
using StatPhysVec = Tagged<space::StatPhysical>;  ///< s
using OperatingVec = Tagged<space::Operating>;    ///< theta
using PerfVec = Tagged<space::Performance>;       ///< f
using MarginVec = Tagged<space::Margin>;          ///< m

using StatUnitBlock = TaggedConstView<space::StatUnit>;
using StatPhysBlock = TaggedConstView<space::StatPhysical>;
using StatPhysBlockView = TaggedView<space::StatPhysical>;
using PerfBlockView = TaggedView<space::Performance>;
using MarginBlockView = TaggedView<space::Margin>;

}  // namespace mayo::linalg
