#include "linalg/sparse.hpp"

#include <algorithm>

namespace mayo::linalg {

CsrPattern::CsrPattern(std::size_t n,
                       std::vector<std::pair<int, int>> entries)
    : n_(n) {
  std::sort(entries.begin(), entries.end());
  entries.erase(std::unique(entries.begin(), entries.end()), entries.end());
  row_ptr_.assign(n_ + 1, 0);
  col_idx_.reserve(entries.size());
  for (const auto& [row, col] : entries) {
    MAYO_ASSERT(row >= 0 && static_cast<std::size_t>(row) < n_,
                "CsrPattern: row out of range");
    MAYO_ASSERT(col >= 0 && static_cast<std::size_t>(col) < n_,
                "CsrPattern: col out of range");
    ++row_ptr_[static_cast<std::size_t>(row) + 1];
    col_idx_.push_back(col);
  }
  for (std::size_t r = 0; r < n_; ++r) row_ptr_[r + 1] += row_ptr_[r];
}

int CsrPattern::slot(int row, int col) const {
  const auto begin = col_idx_.begin() + row_ptr_[row];
  const auto end = col_idx_.begin() + row_ptr_[row + 1];
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return -1;
  return static_cast<int>(it - col_idx_.begin());
}

namespace {

/// One active (column, magnitude) entry of a row during the analysis
/// elimination.  Rows stay sorted by column for O(log) membership tests.
struct Entry {
  int col;
  double mag;
};

bool entry_less(const Entry& e, int col) { return e.col < col; }

}  // namespace

void SymbolicLu::analyze(const CsrPattern& pattern, const double* magnitudes,
                         double pivot_threshold) {
  const std::size_t n = pattern.size();
  MAYO_ASSERT(n > 0, "SymbolicLu::analyze: empty pattern");
  MAYO_ASSERT(pivot_threshold > 0.0 && pivot_threshold <= 1.0,
              "SymbolicLu::analyze: pivot_threshold must be in (0, 1]");
#if MAYO_CHECKS_ENABLED
  for (std::size_t k = 0; k < pattern.nnz(); ++k) {
    MAYO_CHECK_FINITE(magnitudes[k], "SymbolicLu::analyze magnitude");
    MAYO_ASSERT(magnitudes[k] >= 0.0,
                "SymbolicLu::analyze: magnitudes must be nonnegative");
  }
#endif

  // Working copy of the pattern with magnitudes.  The elimination below
  // mirrors what every later numeric refactorization will do, except
  // that updates are *additive* on nonnegative magnitudes: nothing ever
  // cancels, so the recorded structure is a superset of any numeric
  // elimination on this pattern (structure closure).  Zero-magnitude
  // slots still propagate fill -- structure, not luck, decides.
  std::vector<std::vector<Entry>> rows(n);
  std::vector<int> col_count(n, 0);
  for (std::size_t r = 0; r < n; ++r) {
    const int begin = pattern.row_ptr()[r];
    const int end = pattern.row_ptr()[r + 1];
    rows[r].reserve(static_cast<std::size_t>(end - begin));
    for (int k = begin; k < end; ++k) {
      rows[r].push_back({pattern.col_idx()[k], magnitudes[k]});
      ++col_count[pattern.col_idx()[k]];
    }
  }

  n_ = 0;  // not analyzed until the elimination completes (throws leave
           // the object safely re-analyzable)
  perm_row_.assign(n, 0);
  col_of_pos_.assign(n, 0);
  std::vector<int> pos_of_col(n, -1);
  std::vector<char> row_done(n, 0);
  std::vector<char> col_done(n, 0);
  std::vector<std::vector<int>> l_of_row(n);  // per original row, steps
  std::vector<std::vector<int>> u_cols(n);    // per step, active columns

  for (std::size_t step = 0; step < n; ++step) {
    // Threshold-Markowitz pivot: among entries with magnitude at least
    // pivot_threshold times their row maximum, minimize the Markowitz
    // cost (row_nnz-1)*(col_nnz-1); ties break on (row, col).  All
    // comparisons are exact, the scan order is fixed, and the candidate
    // set depends only on the magnitudes -- deterministic by design.
    long best_cost = -1;
    int best_row = -1;
    int best_col = -1;
    for (std::size_t r = 0; r < n; ++r) {
      if (row_done[r]) continue;
      double row_max = 0.0;
      for (const Entry& e : rows[r]) row_max = std::max(row_max, e.mag);
      if (row_max == 0.0) continue;
      const long row_cost = static_cast<long>(rows[r].size()) - 1;
      for (const Entry& e : rows[r]) {
        if (e.mag <= 0.0 || e.mag < pivot_threshold * row_max) continue;
        const long cost = row_cost * (col_count[e.col] - 1);
        if (best_cost < 0 || cost < best_cost ||
            (cost == best_cost &&
             (static_cast<int>(r) < best_row ||
              (static_cast<int>(r) == best_row && e.col < best_col)))) {
          best_cost = cost;
          best_row = static_cast<int>(r);
          best_col = e.col;
        }
      }
    }
    if (best_row < 0) throw SingularMatrixError(step);

    const std::size_t piv_row = static_cast<std::size_t>(best_row);
    const int piv_col = best_col;
    perm_row_[step] = best_row;
    col_of_pos_[step] = piv_col;
    pos_of_col[piv_col] = static_cast<int>(step);
    row_done[piv_row] = 1;
    col_done[piv_col] = 1;

    // The pivot row leaves the active submatrix and becomes a U row.
    u_cols[step].reserve(rows[piv_row].size());
    for (const Entry& e : rows[piv_row]) {
      u_cols[step].push_back(e.col);
      --col_count[e.col];
    }
    const auto piv_it =
        std::lower_bound(rows[piv_row].begin(), rows[piv_row].end(), piv_col,
                         entry_less);
    const double piv_mag = piv_it->mag;

    // Eliminate the pivot column from every remaining active row that
    // carries it (structurally -- magnitude zero still counts), adding
    // the pivot row's fill.
    for (std::size_t r = 0; r < n; ++r) {
      if (row_done[r]) continue;
      const auto hit =
          std::lower_bound(rows[r].begin(), rows[r].end(), piv_col,
                           entry_less);
      if (hit == rows[r].end() || hit->col != piv_col) continue;
      const double factor = hit->mag / piv_mag;
      rows[r].erase(hit);
      --col_count[piv_col];
      l_of_row[r].push_back(static_cast<int>(step));
      for (const Entry& e : rows[piv_row]) {
        if (e.col == piv_col) continue;
        const auto at = std::lower_bound(rows[r].begin(), rows[r].end(),
                                         e.col, entry_less);
        if (at != rows[r].end() && at->col == e.col) {
          at->mag += factor * e.mag;
        } else {
          rows[r].insert(at, {e.col, factor * e.mag});
          ++col_count[e.col];
        }
      }
    }
  }

  n_ = n;

  // Flatten into the fixed CSR-like arrays SparseLu consumes.  Every
  // column received exactly one position (n steps, n distinct columns).
  a_ptr_.assign(n + 1, 0);
  a_slot_.clear();
  a_pos_.clear();
  l_ptr_.assign(n + 1, 0);
  l_pos_.clear();
  u_ptr_.assign(n + 1, 0);
  u_pos_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const int r = perm_row_[i];
    for (int k = pattern.row_ptr()[r]; k < pattern.row_ptr()[r + 1]; ++k) {
      a_slot_.push_back(k);
      a_pos_.push_back(pos_of_col[pattern.col_idx()[k]]);
    }
    a_ptr_[i + 1] = static_cast<int>(a_slot_.size());

    for (const int s : l_of_row[r]) l_pos_.push_back(s);
    l_ptr_[i + 1] = static_cast<int>(l_pos_.size());

    const std::size_t u_begin = u_pos_.size();
    for (const int c : u_cols[i]) u_pos_.push_back(pos_of_col[c]);
    std::sort(u_pos_.begin() + static_cast<std::ptrdiff_t>(u_begin),
              u_pos_.end());
    MAYO_ASSERT(u_pos_[u_begin] == static_cast<int>(i),
                "SymbolicLu: U row must start with its diagonal");
    u_ptr_[i + 1] = static_cast<int>(u_pos_.size());
  }

  obs::registry().counters.sparse_symbolic.add();
}

}  // namespace mayo::linalg
