// mayo/linalg -- LU decomposition with partial pivoting.
//
// Used by the circuit simulator for the (real) DC Newton systems and the
// (complex) AC small-signal systems.  The factorization is stored in-place;
// `solve` reuses it for multiple right-hand sides, which the AC sweep and
// finite-difference code paths exploit.
//
// Hot loops (Newton iterations, AC frequency probes) factor thousands of
// same-sized systems, so the class doubles as a reusable workspace: fill
// `workspace(n)` (or assemble into it) and call `refactor()` — no
// allocation after the first system of a given size, and the pivoting and
// elimination sequence is identical to the factorizing constructor, so a
// ported caller cannot change a single result bit.
#pragma once

#include <cmath>
#include <complex>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace mayo::linalg {

/// Thrown when a factorization encounters a (numerically) singular matrix.
class SingularMatrixError : public std::runtime_error {
 public:
  explicit SingularMatrixError(std::size_t pivot_index)
      : std::runtime_error("singular matrix: zero pivot at index " +
                           std::to_string(pivot_index)),
        pivot_index_(pivot_index) {}
  /// Enriched form: same pivot index, caller-composed message (the solver
  /// boundary uses this to name the offending netlist node or branch).
  SingularMatrixError(std::size_t pivot_index, const std::string& message)
      : std::runtime_error(message), pivot_index_(pivot_index) {}
  std::size_t pivot_index() const { return pivot_index_; }

 private:
  std::size_t pivot_index_;
};

/// LU factorization with partial (row) pivoting of a square matrix.
template <typename T>
class Lu {
 public:
  /// Empty workspace; fill `workspace(n)` and call `refactor()`.
  Lu() = default;

  /// Factorizes `a`; throws SingularMatrixError if a pivot is exactly zero
  /// or below `pivot_tolerance` relative to the largest entry.
  explicit Lu(Matrix<T> a, double pivot_tolerance = 0.0) : lu_(std::move(a)) {
    factor(pivot_tolerance);
  }

  /// Reshapes the internal matrix to n x n and returns it for the caller
  /// to fill (stamp or assemble), then factor with `refactor()`.  The
  /// matrix is zeroed unless `zero` is false (for callers that overwrite
  /// every entry).  No allocation when the previous system had the same
  /// size.
  Matrix<T>& workspace(std::size_t n, bool zero = true) {
    if (lu_.rows() != n || lu_.cols() != n)
      lu_ = Matrix<T>(n, n);
    else if (zero)
      lu_.set_zero();
    return lu_;
  }

  /// Factors the current workspace contents in place.  Same pivoting and
  /// elimination sequence (and SingularMatrixError behavior) as the
  /// factorizing constructor; only the permutation buffer is reused.
  void refactor(double pivot_tolerance = 0.0) { factor(pivot_tolerance); }

  std::size_t size() const { return lu_.rows(); }

  /// Solves A x = b for one right-hand side.
  std::vector<T> solve(const std::vector<T>& b) const {
    const std::size_t n = size();
    if (b.size() != n) throw std::invalid_argument("Lu::solve: rhs size mismatch");
    std::vector<T> x(n);
    solve_into(b.data(), x.data());
    return x;
  }

  /// Allocation-free solve: permutation + forward/back substitution
  /// writing into `x`.  Both buffers must hold size() entries and must
  /// not alias (the substitution reads permuted entries of `b` after the
  /// first elements of `x` are written).
  void solve_into(const T* b, T* x) const {
    const std::size_t n = size();
    // Apply permutation and forward-substitute L (unit diagonal).
    for (std::size_t i = 0; i < n; ++i) {
      T acc = b[perm_[i]];
      const T* row_i = lu_.row(i);
      for (std::size_t j = 0; j < i; ++j) acc -= row_i[j] * x[j];
      x[i] = acc;
    }
    // Back-substitute U.
    for (std::size_t ii = n; ii-- > 0;) {
      T acc = x[ii];
      const T* row_ii = lu_.row(ii);
      for (std::size_t j = ii + 1; j < n; ++j) acc -= row_ii[j] * x[j];
      x[ii] = acc / row_ii[ii];
    }
  }

  /// Determinant of the factorized matrix.
  T determinant() const {
    T det = static_cast<T>(sign_);
    for (std::size_t i = 0; i < size(); ++i) det *= lu_(i, i);
    return det;
  }

 private:
  void factor(double pivot_tolerance) {
    if (lu_.rows() != lu_.cols())
      throw std::invalid_argument("Lu: matrix must be square");
    const std::size_t n = lu_.rows();
    perm_.resize(n);
    for (std::size_t i = 0; i < n; ++i) perm_[i] = i;
    sign_ = 1;
    const double scale = lu_.max_abs();
    const double tol = pivot_tolerance * scale;

    for (std::size_t k = 0; k < n; ++k) {
      // Find pivot row.
      std::size_t piv = k;
      double best = std::abs(lu_(k, k));
      for (std::size_t r = k + 1; r < n; ++r) {
        const double mag = std::abs(lu_(r, k));
        if (mag > best) {
          best = mag;
          piv = r;
        }
      }
      if (best == 0.0 || best <= tol) throw SingularMatrixError(k);
      if (piv != k) {
        for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(piv, c));
        std::swap(perm_[k], perm_[piv]);
        sign_ = -sign_;
      }
      const T pivot = lu_(k, k);
      // Distinct rows of the same matrix never overlap; telling the
      // compiler lets it vectorize the rank-1 update without a runtime
      // overlap check (the update itself is elementwise, so the result
      // bits do not depend on the vector width).
      const T* __restrict__ row_k = lu_.row(k);
      for (std::size_t r = k + 1; r < n; ++r) {
        T* __restrict__ row_r = lu_.row(r);
        const T factor = row_r[k] / pivot;
        row_r[k] = factor;
        if (factor == T{}) continue;
        for (std::size_t c = k + 1; c < n; ++c) row_r[c] -= factor * row_k[c];
      }
    }
  }

  Matrix<T> lu_;
  std::vector<std::size_t> perm_;
  int sign_ = 1;
};

using Lud = Lu<double>;
using Luc = Lu<std::complex<double>>;

/// Convenience: solve A x = b (real) with a fresh factorization.
Vector solve(const Matrixd& a, const Vector& b);
/// Convenience: solve A x = b (complex) with a fresh factorization.
VectorC solve(const Matrixc& a, const VectorC& b);
/// Inverse via LU (small matrices only; prefer solve()).
Matrixd inverse(const Matrixd& a);

}  // namespace mayo::linalg
