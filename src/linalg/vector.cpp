#include "linalg/vector.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace mayo::linalg {

namespace {
void check_same_size(const Vector& a, const Vector& b, const char* op) {
  if (a.size() != b.size()) {
    throw std::invalid_argument(std::string("Vector dimension mismatch in ") +
                                op + ": " + std::to_string(a.size()) +
                                " vs " + std::to_string(b.size()));
  }
}
}  // namespace

void Vector::fill(double value) { std::fill(data_.begin(), data_.end(), value); }

Vector& Vector::operator+=(const Vector& rhs) {
  check_same_size(*this, rhs, "operator+=");
  for (std::size_t i = 0; i < size(); ++i) data_[i] += rhs[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  check_same_size(*this, rhs, "operator-=");
  for (std::size_t i = 0; i < size(); ++i) data_[i] -= rhs[i];
  return *this;
}

Vector& Vector::operator*=(double scale) {
  for (double& x : data_) x *= scale;
  return *this;
}

Vector& Vector::operator/=(double scale) {
  for (double& x : data_) x /= scale;
  return *this;
}

double Vector::norm() const { return std::sqrt(norm2()); }

double Vector::norm2() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return acc;
}

double Vector::max_abs() const {
  double acc = 0.0;
  for (double x : data_) acc = std::max(acc, std::abs(x));
  return acc;
}

double Vector::sum() const {
  double acc = 0.0;
  for (double x : data_) acc += x;
  return acc;
}

Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
Vector operator*(Vector lhs, double scale) { return lhs *= scale; }
Vector operator*(double scale, Vector rhs) { return rhs *= scale; }
Vector operator/(Vector lhs, double scale) { return lhs /= scale; }

Vector operator-(Vector v) {
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = -v[i];
  return v;
}

double dot(const Vector& a, const Vector& b) {
  check_same_size(a, b, "dot");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double distance(const Vector& a, const Vector& b) {
  check_same_size(a, b, "distance");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    acc += diff * diff;
  }
  return std::sqrt(acc);
}

Vector hadamard(const Vector& a, const Vector& b) {
  check_same_size(a, b, "hadamard");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

Vector axpy(const Vector& a, double scale, const Vector& b) {
  check_same_size(a, b, "axpy");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + scale * b[i];
  return out;
}

Vector unit(std::size_t n, std::size_t k) {
  if (k >= n) throw std::out_of_range("unit: index out of range");
  Vector e(n);
  e[k] = 1.0;
  return e;
}

std::ostream& operator<<(std::ostream& os, const Vector& v) {
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) os << ", ";
    os << v[i];
  }
  return os << ']';
}

}  // namespace mayo::linalg
