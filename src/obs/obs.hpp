// mayo/obs -- deterministic instrumentation: monotonic counters and
// timing spans for the yield-optimization loop.
//
// Design rules (the reason this is its own bottom-layer module):
//   * Observation only.  Nothing in here ever feeds back into a
//     computation: counters and spans cannot perturb a result bit.  The
//     bitwise determinism suites (scalar == batch == parallel) run with
//     obs enabled.
//   * Allocation-free on the hot path.  Every counter is a fixed struct
//     member; incrementing is one relaxed atomic add.  Spans read the
//     steady clock twice and fold nanoseconds into an accumulator.
//     Registration, maps, and string keys do not exist.
//   * Compiled out entirely under -DMAYO_OBS_ENABLED=0 (CMake option
//     MAYO_OBS=OFF): Counter/PhaseTimer/Span become empty no-op types, so
//     call sites vanish at -O1 and the library carries zero overhead.
//   * Thread-safe by construction.  Counters are relaxed atomics; the
//     parallel verifier's workers all hit the same registry.  Counter
//     *totals* are deterministic for a deterministic workload; the split
//     across workers is not (work is pulled), which is why decisions and
//     results never depend on them.
//
// The process-wide Registry (obs::registry()) is the sink the whole stack
// increments into; core/run_report.{hpp,cpp} snapshots it into the
// structured RunReport JSON (the sanctioned output path).  Timing uses
// std::chrono::steady_clock, the one clock the determinism lint allows:
// elapsed-time reporting only, never seeding or decisions.
#pragma once

#include <chrono>
#include <cstdint>

#ifndef MAYO_OBS_ENABLED
#define MAYO_OBS_ENABLED 1
#endif

#if MAYO_OBS_ENABLED
#include <atomic>
#endif

namespace mayo::obs {

#if MAYO_OBS_ENABLED

inline constexpr bool kEnabled = true;

/// Monotonic event counter.  Relaxed atomic: increments from parallel
/// workers merge without ordering cost; reads are for reporting only.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Accumulated wall time + entry count of one phase.
class PhaseTimer {
 public:
  void record(std::uint64_t elapsed_ns) noexcept {
    ns_.fetch_add(elapsed_ns, std::memory_order_relaxed);
    calls_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t total_ns() const noexcept {
    return ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t calls() const noexcept {
    return calls_.load(std::memory_order_relaxed);
  }
  double seconds() const noexcept {
    return static_cast<double>(total_ns()) * 1e-9;
  }
  void reset() noexcept {
    ns_.store(0, std::memory_order_relaxed);
    calls_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> ns_{0};
  std::atomic<std::uint64_t> calls_{0};
};

/// RAII timing span: accumulates the elapsed time between construction
/// and destruction (or stop()) into a PhaseTimer.
class Span {
 public:
  explicit Span(PhaseTimer& timer) noexcept
      : timer_(&timer), start_(std::chrono::steady_clock::now()) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { stop(); }

  /// Ends the span early (idempotent).
  void stop() noexcept {
    if (timer_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    timer_->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
    timer_ = nullptr;
  }

 private:
  PhaseTimer* timer_;
  std::chrono::steady_clock::time_point start_;
};

#else  // !MAYO_OBS_ENABLED -- every type is an empty no-op shell.

inline constexpr bool kEnabled = false;

class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  std::uint64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class PhaseTimer {
 public:
  void record(std::uint64_t) noexcept {}
  std::uint64_t total_ns() const noexcept { return 0; }
  std::uint64_t calls() const noexcept { return 0; }
  double seconds() const noexcept { return 0.0; }
  void reset() noexcept {}
};

class Span {
 public:
  explicit Span(PhaseTimer&) noexcept {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  void stop() noexcept {}
};

#endif  // MAYO_OBS_ENABLED

/// Hit/miss/eviction triple of one cache (ProbeCache instances, the
/// per-(d, theta) DesignContext caches of the circuit models).
struct CacheCounters {
  Counter hits;
  Counter misses;
  Counter evictions;

  void reset() noexcept {
    hits.reset();
    misses.reset();
    evictions.reset();
  }
};

/// Every counter the stack increments.  Fixed members, no registration:
/// the set is the schema (run_report mirrors it name for name).
struct Counters {
  CacheCounters probe_cache;       ///< Evaluator's (d, s_hat, theta) cache
  CacheCounters constraint_cache;  ///< Evaluator's c(d) cache
  CacheCounters design_context;    ///< circuit models' per-(d, theta) cache

  Counter ac_stamps;  ///< AcSession netlist stamp passes
  Counter ac_probes;  ///< AcSession frequency solves

  Counter dc_solves;             ///< solve_dc calls
  Counter dc_newton_iterations;  ///< Newton iterations across all attempts
  Counter dc_nonconverged;       ///< solve_dc calls that failed

  Counter tran_solves;             ///< solve_transient calls
  Counter tran_steps;              ///< accepted time steps
  Counter tran_newton_iterations;  ///< Newton iterations (incl. retries)
  Counter tran_nonconverged;       ///< runs that gave up mid-trajectory
  Counter tran_seed_resets;        ///< warm-start seeds dropped after a
                                   ///< non-converged seeded step

  Counter mc_samples;  ///< MC verification samples accumulated
  Counter mc_blocks;   ///< MC verification sample blocks evaluated

  Counter mc_is_samples;        ///< IS verification samples accumulated
  Counter mc_is_blocks;         ///< IS verification sample blocks evaluated
  Counter mc_is_rounds;         ///< adaptive IS allocation rounds completed
  Counter mc_is_ess_fallbacks;  ///< per-spec estimates forced self-normalized

  Counter sparse_symbolic;  ///< sparse symbolic analyses (once per topology)
  Counter sparse_refactor;  ///< sparse numeric refactorizations
  Counter sparse_solve;     ///< sparse triangular solves

  Counter audit_runs;      ///< audit_netlist invocations
  Counter audit_findings;  ///< diagnostics produced across all runs
  Counter audit_rejects;   ///< boundary enforcements that threw AuditError

  void reset() noexcept {
    probe_cache.reset();
    constraint_cache.reset();
    design_context.reset();
    ac_stamps.reset();
    ac_probes.reset();
    dc_solves.reset();
    dc_newton_iterations.reset();
    dc_nonconverged.reset();
    tran_solves.reset();
    tran_steps.reset();
    tran_newton_iterations.reset();
    tran_nonconverged.reset();
    tran_seed_resets.reset();
    mc_samples.reset();
    mc_blocks.reset();
    mc_is_samples.reset();
    mc_is_blocks.reset();
    mc_is_rounds.reset();
    mc_is_ess_fallbacks.reset();
    sparse_symbolic.reset();
    sparse_refactor.reset();
    sparse_solve.reset();
    audit_runs.reset();
    audit_findings.reset();
    audit_rejects.reset();
  }
};

/// Per-phase wall-time breakdown of the optimizer loop, keyed to the five
/// boxes of the paper's Fig. 6 (plus the linear-model coordinate search,
/// which the figure folds into its yield-maximization box).
struct Phases {
  PhaseTimer feasibility;        ///< feasible start + constraint models
  PhaseTimer linearization;      ///< spec-wise model building (eq. 15-16)
  PhaseTimer worst_case_search;  ///< worst-case operating + distance search
  PhaseTimer coordinate_search;  ///< yield maximization on linear models
  PhaseTimer line_search;        ///< feasibility line search (eq. 23)
  PhaseTimer verification;       ///< simulation Monte-Carlo verify (eq. 6-7)
  PhaseTimer is_verification;    ///< importance-sampled verify (mean shift)

  void reset() noexcept {
    feasibility.reset();
    linearization.reset();
    worst_case_search.reset();
    coordinate_search.reset();
    line_search.reset();
    verification.reset();
    is_verification.reset();
  }
};

/// The process-wide instrumentation sink.
class Registry {
 public:
  Counters counters;
  Phases phases;

  void reset() noexcept {
    counters.reset();
    phases.reset();
  }

  /// Enumerates every counter in fixed (schema) order.  The names are the
  /// stable dotted keys of the RunReport JSON; both builds (obs ON and
  /// OFF) enumerate the identical set, so the report schema never depends
  /// on the build configuration.
  template <typename Fn>
  void each_counter(Fn&& fn) const {
    const Counters& c = counters;
    fn("probe_cache.hits", c.probe_cache.hits.value());
    fn("probe_cache.misses", c.probe_cache.misses.value());
    fn("probe_cache.evictions", c.probe_cache.evictions.value());
    fn("constraint_cache.hits", c.constraint_cache.hits.value());
    fn("constraint_cache.misses", c.constraint_cache.misses.value());
    fn("constraint_cache.evictions", c.constraint_cache.evictions.value());
    fn("design_context.hits", c.design_context.hits.value());
    fn("design_context.misses", c.design_context.misses.value());
    fn("design_context.evictions", c.design_context.evictions.value());
    fn("ac.stamps", c.ac_stamps.value());
    fn("ac.probes", c.ac_probes.value());
    fn("dc.solves", c.dc_solves.value());
    fn("dc.newton_iterations", c.dc_newton_iterations.value());
    fn("dc.nonconverged", c.dc_nonconverged.value());
    fn("tran.solves", c.tran_solves.value());
    fn("tran.steps", c.tran_steps.value());
    fn("tran.newton_iterations", c.tran_newton_iterations.value());
    fn("tran.nonconverged", c.tran_nonconverged.value());
    fn("tran.seed_resets", c.tran_seed_resets.value());
    fn("mc.samples", c.mc_samples.value());
    fn("mc.blocks", c.mc_blocks.value());
    fn("mc.is.samples", c.mc_is_samples.value());
    fn("mc.is.blocks", c.mc_is_blocks.value());
    fn("mc.is.rounds", c.mc_is_rounds.value());
    fn("mc.is.ess_fallbacks", c.mc_is_ess_fallbacks.value());
    fn("sparse.symbolic", c.sparse_symbolic.value());
    fn("sparse.refactor", c.sparse_refactor.value());
    fn("sparse.solve", c.sparse_solve.value());
    fn("audit.runs", c.audit_runs.value());
    fn("audit.findings", c.audit_findings.value());
    fn("audit.rejects", c.audit_rejects.value());
  }

  /// Enumerates every phase timer in fixed (schema) order.
  template <typename Fn>
  void each_phase(Fn&& fn) const {
    fn("feasibility", phases.feasibility);
    fn("linearization", phases.linearization);
    fn("worst_case_search", phases.worst_case_search);
    fn("coordinate_search", phases.coordinate_search);
    fn("line_search", phases.line_search);
    fn("verification", phases.verification);
    fn("is_verification", phases.is_verification);
  }
};

/// The process-wide registry every instrumented call site increments.
inline Registry& registry() noexcept {
  // The registry is the sanctioned shared-state sink: every member is a
  // relaxed std::atomic, so concurrent increments are safe by design.
  static Registry instance;  // shared-ok: all members are relaxed atomics
  return instance;
}

}  // namespace mayo::obs
