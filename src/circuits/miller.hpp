// mayo/circuits -- two-stage Miller-compensated opamp (paper Fig. 8).
//
// NMOS input pair with PMOS mirror load, PMOS common-source second stage
// with NMOS current sink, RC (Miller + nulling resistor) compensation.
// Same testbench pattern as the folded cascode: an open-loop AC bench
// (DC-feedback biased) for A0, f_t, phase margin and power, and a
// unity-gain transient bench for the slew rate.
//
// Performances (spec order): A0 [dB], f_t [MHz], PM [deg], SR+ [V/us],
// Power [mW].
//
// Following the paper's second experiment, only GLOBAL process variations
// are modeled (4 statistical parameters, constant covariance): the
// constant-C code path of the optimizer.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "circuits/process.hpp"
#include "core/problem.hpp"
#include "linalg/system_matrix.hpp"
#include "sim/ac.hpp"
#include "sim/solver.hpp"

namespace mayo::circuits {

/// Indices into the design vector.
struct MillerDesign {
  enum Index : std::size_t {
    kWIn = 0,   ///< input pair M1/M2 width
    kWLoad,     ///< PMOS mirror load M3/M4 width
    kWTail,     ///< tail source M5 width
    kWP2,       ///< second-stage PMOS M6 width
    kWN2,       ///< second-stage sink M7 width
    kIref,      ///< reference current [A]
    kCc,        ///< compensation capacitor [F]
    kCount
  };
};

/// Indices into the statistical vector (globals only).
struct MillerStats {
  enum Index : std::size_t {
    kDvthnGlobal = 0,
    kDvthpGlobal,
    kDkpnGlobal,
    kDkppGlobal,
    kCount
  };
};

class Miller final : public core::PerformanceModel {
 public:
  struct Options {
    Process process = default_process();
    double length = 2e-6;       ///< channel length of all devices [m]
    double bias_width = 20e-6;  ///< width of the bias diode [m]
    double load_cap = 20e-12;   ///< output load [F]
    double rz = 800.0;          ///< compensation nulling resistor [Ohm]
    double sat_margin = 0.05;   ///< required saturation margin [V]
    double sr_step = 0.5;       ///< input step of the slew bench [V]
    double sr_t_stop = 1.2e-6;  ///< transient duration [s]
    double sr_dt = 4e-9;        ///< transient step [s]
    /// Linear-solver backend selection for every bench solve (kAuto keeps
    /// this opamp-scale netlist on the dense fast path; tests force
    /// kSparse to pin dense/sparse equivalence).
    linalg::SolverOptions solver;
  };

  Miller();  ///< default options
  explicit Miller(Options options);
  ~Miller() override;

  std::size_t num_performances() const override { return 5; }
  std::size_t num_constraints() const override { return 7; }
  std::vector<std::string> constraint_names() const override;
  std::unique_ptr<core::PerformanceModel> clone() const override;
  linalg::PerfVec evaluate(const linalg::DesignVec& d,
                           const linalg::StatPhysVec& s,
                           const linalg::OperatingVec& theta) override;
  /// Native batch path: per-(d, theta) nominal solves (bias point, ft
  /// bracket, slew trajectory) are built once; each sample row reuses them
  /// as warm starts and is bitwise-identical to the scalar evaluate().
  void evaluate_batch(const linalg::DesignVec& d, linalg::StatPhysBlock s_block,
                      const linalg::OperatingVec& theta,
                      linalg::PerfBlockView out) override;
  linalg::Vector constraints(const linalg::DesignVec& d) override;

  /// Detailed measurement access for sweeps and figures.  Deliberately
  /// untyped (raw vectors): callers sweep arbitrary ad-hoc points.
  struct Measurements {
    double a0_db = 0.0;
    double ft_mhz = 0.0;
    double pm_deg = 0.0;
    double sr_v_per_us = 0.0;
    double power_mw = 0.0;
    bool valid = false;
  };
  Measurements measure(const linalg::Vector& d, const linalg::Vector& s,
                       const linalg::Vector& theta);

  static std::vector<std::string> performance_names();
  static std::vector<std::string> statistical_names();
  static linalg::Vector initial_design();

  static core::YieldProblem make_problem();  ///< default options
  static core::YieldProblem make_problem(Options options);

  const Options& options() const { return options_; }

 private:
  struct Bench;
  struct DesignContext;  // per-(d, theta) nominal solves shared by samples

  static std::unique_ptr<Bench> build_bench(const Options& options, bool unity);
  void apply(Bench& bench, const linalg::Vector& d, const linalg::Vector& s,
             const linalg::Vector& theta) const;
  /// Context for (d, theta): created empty on first use, sections filled
  /// lazily, FIFO-bounded.  Contents are a pure function of (d, theta).
  DesignContext& design_context(const linalg::Vector& d,
                                const linalg::Vector& theta);
  void ensure_ac_section(DesignContext& ctx, const linalg::Vector& d,
                         const linalg::Vector& theta);
  void ensure_ft_section(DesignContext& ctx, const linalg::Vector& d,
                         const linalg::Vector& theta);
  void ensure_sr_section(DesignContext& ctx, const linalg::Vector& d,
                         const linalg::Vector& theta);
  Measurements measure_with_context(DesignContext& ctx,
                                    const linalg::Vector& d,
                                    const linalg::Vector& s,
                                    const linalg::Vector& theta);

  Options options_;
  std::unique_ptr<Bench> ac_bench_;
  std::unique_ptr<Bench> sr_bench_;
  std::vector<std::unique_ptr<DesignContext>> contexts_;  ///< FIFO cache
  std::vector<std::uint64_t> context_key_;  ///< key-building scratch
  linalg::Vector batch_s_;                  ///< row scratch for batches
  /// Reusable small-signal workspace.  Every use fully re-stamps it, so it
  /// carries cost (buffers, factors) but never results between calls.
  sim::AcSession ac_session_;
  /// Newton linear-system workspaces, one per bench (the benches differ
  /// in size; sharing one would thrash the sparse pattern and symbolic
  /// analysis on every alternation).  Like the session, they carry only
  /// cost between calls; clone() gives each parallel worker fresh ones.
  sim::LinearSystem newton_ac_;
  sim::LinearSystem newton_sr_;
};

}  // namespace mayo::circuits
