#include "circuits/folded_cascode.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "circuit/netlist.hpp"
#include "core/probe_cache.hpp"
#include "obs/obs.hpp"
#include "sim/ac.hpp"
#include "sim/dc.hpp"
#include "sim/measure.hpp"
#include "sim/transient.hpp"

namespace mayo::circuits {

using circuit::Capacitor;
using circuit::Conditions;
using circuit::CurrentSource;
using circuit::MosGeometry;
using circuit::Mosfet;
using circuit::MosType;
using circuit::Netlist;
using circuit::NodeId;
using circuit::Resistor;
using circuit::VoltageSource;
using linalg::Vector;

using Design = FoldedCascodeDesign;
using Stats = FoldedCascodeStats;

// --------------------------------------------------------------- topology --

struct FoldedCascode::Bench {
  Netlist netlist;
  bool unity = false;

  // Signal transistors M0..M10 in constraint order.
  std::array<Mosfet*, 11> signal{};
  Mosfet* mb1 = nullptr;
  Mosfet* mb2 = nullptr;
  Mosfet* mb3 = nullptr;

  VoltageSource* vdd = nullptr;
  VoltageSource* vinp = nullptr;
  VoltageSource* vinn = nullptr;  // null in the unity-gain bench
  VoltageSource* vbp2 = nullptr;
  VoltageSource* vbn2 = nullptr;
  CurrentSource* iref = nullptr;
  Capacitor* cl = nullptr;
  NodeId out = circuit::kGround;
};

// Per-(d, theta) reusable results.  Everything in here is computed at the
// NOMINAL statistical point with cold solves, i.e. it is a pure function
// of (d, theta): evaluation results can depend on the context only through
// warm-start seeds, never on the history of earlier calls.  (The previous
// scheme kept the last DC solution as a warm start, which made results
// depend on the evaluation order.)
struct FoldedCascode::DesignContext {
  std::vector<std::uint64_t> key;  ///< raw bits of (d, theta)

  bool ac_done = false;
  bool ac_converged = false;
  Vector op_ac;  ///< nominal DC operating point of the AC bench

  bool ft_done = false;
  bool ft_valid = false;
  sim::FtBracket ft_bracket;  ///< nominal unity-gain crossing, widened

  bool sr_done = false;
  bool sr_converged = false;
  Vector op_sr;  ///< nominal DC operating point of the unity-gain bench
  bool traj_valid = false;
  std::vector<Vector> sr_traj;  ///< nominal step-response trajectory
};

namespace {
/// AC sweep bounds of the ft measurement (shared by the nominal sweep in
/// the context and the per-sample seeded measurement).
constexpr double kFtLow = 1.0;
constexpr double kFtHigh = 10e9;
/// Headroom factor applied to the nominal crossing on both sides; mismatch
/// rarely moves ft by more than tens of percent, and an escaped crossing
/// just falls back to the full sweep.
constexpr double kFtWiden = 1.6;
/// Bounded FIFO of design contexts (coordinate searches revisit a handful
/// of designs; old entries can always be rebuilt).
constexpr std::size_t kContextCapacity = 16;
}  // namespace

std::unique_ptr<FoldedCascode::Bench> FoldedCascode::build_bench(
    const FoldedCascode::Options& opt, bool unity) {
  auto bench = std::make_unique<FoldedCascode::Bench>();
  bench->unity = unity;
  Netlist& nl = bench->netlist;

  const NodeId vdd = nl.add_node("vdd");
  const NodeId inp = nl.add_node("inp");
  const NodeId out = nl.add_node("out");
  // In the unity-gain bench the inverting input IS the output node.
  const NodeId inn = unity ? out : nl.add_node("inn");
  const NodeId tail = nl.add_node("tail");
  const NodeId n1 = nl.add_node("n1");
  const NodeId n2 = nl.add_node("n2");
  const NodeId cg = nl.add_node("cg");    // mirror gate / left cascode drain
  const NodeId s7 = nl.add_node("s7");
  const NodeId s8 = nl.add_node("s8");
  const NodeId bn1 = nl.add_node("bn1");
  const NodeId bp1 = nl.add_node("bp1");
  const NodeId bp2 = nl.add_node("bp2");
  const NodeId bn2 = nl.add_node("bn2");
  bench->out = out;

  const auto& proc_n = opt.process.nmos;
  const auto& proc_p = opt.process.pmos;
  const MosGeometry bias_geom{opt.bias_width, opt.length};
  const MosGeometry default_geom{20e-6, opt.length};

  // Supplies and inputs.
  bench->vdd = &nl.add<VoltageSource>("Vdd", vdd, circuit::kGround, 5.0);
  bench->vinp = &nl.add<VoltageSource>("Vinp", inp, circuit::kGround, 2.5);
  if (!unity) {
    // DC feedback that is transparent at AC: Vinn (AC excitation handle)
    // sits between the inverting input and the R/C loop filter.
    const NodeId fb = nl.add_node("fb");
    bench->vinn = &nl.add<VoltageSource>("Vinn", inn, fb, 0.0);
    nl.add<Resistor>("Rfb", out, fb, 1e9);
    nl.add<Capacitor>("Cfb", fb, circuit::kGround, 1.0);
  }

  // Bias generation: Iref -> NMOS diode MB1 (bn1); MB3 mirrors Iref and
  // pulls through the PMOS diode MB2 (bp1); cascode gates are
  // supply-referenced voltage sources.
  bench->iref = &nl.add<CurrentSource>("Iref", vdd, bn1, 50e-6);
  bench->mb1 = &nl.add<Mosfet>("MB1", MosType::kNmos, bn1, bn1,
                               circuit::kGround, circuit::kGround, proc_n,
                               bias_geom);
  bench->mb2 =
      &nl.add<Mosfet>("MB2", MosType::kPmos, bp1, bp1, vdd, vdd, proc_p,
                      bias_geom);
  bench->mb3 = &nl.add<Mosfet>("MB3", MosType::kNmos, bp1, bn1,
                               circuit::kGround, circuit::kGround, proc_n,
                               bias_geom);
  bench->vbp2 = &nl.add<VoltageSource>("Vbp2", vdd, bp2, opt.vcasc_p);
  bench->vbn2 = &nl.add<VoltageSource>("Vbn2", bn2, circuit::kGround,
                                       opt.vcasc_n);

  // Signal path.
  bench->signal[0] = &nl.add<Mosfet>("M0", MosType::kNmos, tail, bn1,
                                     circuit::kGround, circuit::kGround,
                                     proc_n, default_geom);
  bench->signal[1] = &nl.add<Mosfet>("M1", MosType::kNmos, n1, inp, tail,
                                     circuit::kGround, proc_n, default_geom);
  bench->signal[2] = &nl.add<Mosfet>("M2", MosType::kNmos, n2, inn, tail,
                                     circuit::kGround, proc_n, default_geom);
  bench->signal[3] = &nl.add<Mosfet>("M3", MosType::kPmos, n1, bp1, vdd, vdd,
                                     proc_p, default_geom);
  bench->signal[4] = &nl.add<Mosfet>("M4", MosType::kPmos, n2, bp1, vdd, vdd,
                                     proc_p, default_geom);
  bench->signal[5] = &nl.add<Mosfet>("M5", MosType::kPmos, cg, bp2, n1, vdd,
                                     proc_p, default_geom);
  bench->signal[6] = &nl.add<Mosfet>("M6", MosType::kPmos, out, bp2, n2, vdd,
                                     proc_p, default_geom);
  bench->signal[7] = &nl.add<Mosfet>("M7", MosType::kNmos, cg, bn2, s7,
                                     circuit::kGround, proc_n, default_geom);
  bench->signal[8] = &nl.add<Mosfet>("M8", MosType::kNmos, out, bn2, s8,
                                     circuit::kGround, proc_n, default_geom);
  bench->signal[9] = &nl.add<Mosfet>("M9", MosType::kNmos, s7, cg,
                                     circuit::kGround, circuit::kGround,
                                     proc_n, default_geom);
  bench->signal[10] = &nl.add<Mosfet>("M10", MosType::kNmos, s8, cg,
                                      circuit::kGround, circuit::kGround,
                                      proc_n, default_geom);

  bench->cl = &nl.add<Capacitor>("CL", out, circuit::kGround, opt.load_cap);
  return bench;
}

namespace {

/// 10%-90% rise-time slew measurement on a step response.
double slew_from_step(const std::vector<double>& time,
                      const std::vector<double>& v) {
  if (v.size() < 3) return 0.0;
  const double v_start = v.front();
  const double v_end = v.back();
  const double delta = v_end - v_start;
  if (std::abs(delta) < 1e-6) return 0.0;
  const double v10 = v_start + 0.1 * delta;
  const double v90 = v_start + 0.9 * delta;
  const auto crossing = [&](double level) {
    for (std::size_t k = 1; k < v.size(); ++k) {
      const bool crossed = delta > 0.0 ? (v[k - 1] < level && v[k] >= level)
                                       : (v[k - 1] > level && v[k] <= level);
      if (crossed) {
        const double f = (level - v[k - 1]) / (v[k] - v[k - 1]);
        return time[k - 1] + f * (time[k] - time[k - 1]);
      }
    }
    return -1.0;
  };
  const double t10 = crossing(v10);
  const double t90 = crossing(v90);
  if (t10 < 0.0 || t90 < 0.0 || t90 <= t10) return 0.0;
  return 0.8 * std::abs(delta) / (t90 - t10);
}

}  // namespace

// ------------------------------------------------------------ construction --

FoldedCascode::FoldedCascode() : FoldedCascode(Options()) {}

FoldedCascode::FoldedCascode(Options options)
    : options_(std::move(options)),
      ac_bench_(build_bench(options_, /*unity=*/false)),
      sr_bench_(build_bench(options_, /*unity=*/true)) {
  ac_session_.set_solver(options_.solver);
}

FoldedCascode::~FoldedCascode() = default;

// --------------------------------------------------------------- binding --

void FoldedCascode::apply(Bench& bench, const Vector& d, const Vector& s,
                          const Vector& theta) const {
  if (d.size() != Design::kCount)
    throw std::invalid_argument("FoldedCascode: design vector size mismatch");
  if (s.size() != Stats::kCount)
    throw std::invalid_argument("FoldedCascode: statistical vector size mismatch");
  if (theta.size() != 2)
    throw std::invalid_argument("FoldedCascode: operating vector size mismatch");

  const double l = options_.length;
  const std::array<double, 11> widths = {
      d[Design::kWTail], d[Design::kWIn],   d[Design::kWIn],
      d[Design::kWSrc],  d[Design::kWSrc],  d[Design::kWPcas],
      d[Design::kWPcas], d[Design::kWNcas], d[Design::kWNcas],
      d[Design::kWMir],  d[Design::kWMir]};

  const double dvthn = s[Stats::kDvthnGlobal];
  const double dvthp = s[Stats::kDvthpGlobal];
  const double kpn = 1.0 + s[Stats::kDkpnGlobal];
  const double kpp = 1.0 + s[Stats::kDkppGlobal];

  for (std::size_t i = 0; i < 11; ++i) {
    Mosfet* mos = bench.signal[i];
    mos->set_geometry({widths[i], l});
    circuit::MosVariation var;
    const bool is_pmos = mos->type() == MosType::kPmos;
    var.dvth = is_pmos ? dvthp : dvthn;
    var.kp_scale = is_pmos ? kpp : kpn;
    // Local mismatch of M1..M10 (index i-1 into the local block).
    if (i >= 1) var.dvth += s[Stats::kLocalFirst + (i - 1)];
    mos->set_variation(var);
  }
  for (Mosfet* mos : {bench.mb1, bench.mb3}) {
    circuit::MosVariation var;
    var.dvth = dvthn;
    var.kp_scale = kpn;
    mos->set_variation(var);
  }
  {
    circuit::MosVariation var;
    var.dvth = dvthp;
    var.kp_scale = kpp;
    bench.mb2->set_variation(var);
  }

  const double vdd = theta[1];
  bench.vdd->set_dc_value(vdd);
  bench.vinp->set_dc_value(0.5 * vdd);
  bench.iref->set_dc_value(d[Design::kIref]);
}

// --------------------------------------------------------------- contexts --

FoldedCascode::DesignContext& FoldedCascode::design_context(
    const Vector& d, const Vector& theta) {
  context_key_.clear();
  core::ProbeCache::append_bits(context_key_, d);
  core::ProbeCache::append_bits(context_key_, theta);
  obs::CacheCounters& stats = obs::registry().counters.design_context;
  for (auto& ctx : contexts_) {
    if (ctx->key == context_key_) {
      stats.hits.add();
      return *ctx;
    }
  }
  stats.misses.add();
  if (contexts_.size() >= kContextCapacity) {
    contexts_.erase(contexts_.begin());
    stats.evictions.add();
  }
  contexts_.push_back(std::make_unique<DesignContext>());
  contexts_.back()->key = context_key_;
  return *contexts_.back();
}

void FoldedCascode::ensure_ac_section(DesignContext& ctx, const Vector& d,
                                      const Vector& theta) {
  if (ctx.ac_done) return;
  ctx.ac_done = true;
  Bench& ac = *ac_bench_;
  const Vector s0(Stats::kCount);
  apply(ac, d, s0, theta);
  const Conditions conditions{theta[0]};
  // Cold solve: no warm start, so the context stays a pure function of
  // (d, theta) regardless of what was evaluated before.
  sim::DcOptions dc;
  dc.solver = options_.solver;
  dc.workspace = &newton_ac_;
  const sim::DcResult op = sim::solve_dc(ac.netlist, conditions, dc);
  ctx.ac_converged = op.converged;
  if (op.converged) ctx.op_ac = op.solution;
}

void FoldedCascode::ensure_ft_section(DesignContext& ctx, const Vector& d,
                                      const Vector& theta) {
  if (ctx.ft_done) return;
  ensure_ac_section(ctx, d, theta);
  ctx.ft_done = true;
  if (!ctx.ac_converged) return;  // ft_valid stays false
  Bench& ac = *ac_bench_;
  const Vector s0(Stats::kCount);
  apply(ac, d, s0, theta);
  const Conditions conditions{theta[0]};
  ac.vinp->set_ac_value({0.5, 0.0});
  ac.vinn->set_ac_value({-0.5, 0.0});
  ac_session_.stamp(ac.netlist, ctx.op_ac, conditions);
  const sim::GainBandwidth gb =
      sim::measure_gain_bandwidth(ac_session_, ac.out, kFtLow, kFtHigh);
  if (!gb.ft_found) return;
  ctx.ft_bracket.f_lo = std::max(kFtLow, gb.ft_hz / kFtWiden);
  ctx.ft_bracket.f_hi = std::min(kFtHigh, gb.ft_hz * kFtWiden);
  ctx.ft_valid = ctx.ft_bracket.f_hi > ctx.ft_bracket.f_lo;
}

void FoldedCascode::ensure_sr_section(DesignContext& ctx, const Vector& d,
                                      const Vector& theta) {
  if (ctx.sr_done) return;
  ctx.sr_done = true;
  Bench& sr = *sr_bench_;
  const Vector s0(Stats::kCount);
  apply(sr, d, s0, theta);
  const double vcm = 0.5 * theta[1];
  sr.vinp->set_dc_value(vcm);
  const Conditions conditions{theta[0]};
  sim::DcOptions dc;
  dc.solver = options_.solver;
  dc.workspace = &newton_sr_;
  const sim::DcResult op = sim::solve_dc(sr.netlist, conditions, dc);
  ctx.sr_converged = op.converged;
  if (!op.converged) return;
  ctx.op_sr = op.solution;
  // Nominal step response: its trajectory seeds every sample's per-step
  // Newton iteration.
  const double step = options_.sr_step;
  sr.vinp->set_waveform([vcm, step](double t) {
    return t <= 0.0 ? vcm : vcm + step;
  });
  sim::TranOptions tran;
  tran.t_stop = options_.sr_t_stop;
  tran.dt = options_.sr_dt;
  tran.newton.solver = options_.solver;
  tran.newton.workspace = &newton_sr_;
  const sim::TranResult tr =
      sim::solve_transient(sr.netlist, op.solution, conditions, tran);
  sr.vinp->clear_waveform();
  if (tr.converged) {
    ctx.sr_traj = tr.solutions;
    ctx.traj_valid = true;
  }
}

// ----------------------------------------------------------- measurements --

FoldedCascode::Measurements FoldedCascode::measure_with_context(
    DesignContext& ctx, const Vector& d, const Vector& s, const Vector& theta) {
  Measurements out;
  Conditions conditions{theta[0]};

  // --- open-loop AC bench: A0, ft, CMRR, power -------------------------
  Bench& ac = *ac_bench_;
  apply(ac, d, s, theta);
  sim::DcOptions ac_dc;
  ac_dc.solver = options_.solver;
  ac_dc.workspace = &newton_ac_;
  sim::DcResult op = sim::solve_dc(
      ac.netlist, conditions, ac_dc, ctx.ac_converged ? &ctx.op_ac : nullptr);
  if (!op.converged) return out;  // valid stays false

  out.power_mw =
      1e3 * sim::measure_supply_power(ac.netlist, op.solution, {ac.vdd});

  // Differential excitation; the nominal crossing seeds the ft search.
  // One session stamp serves the whole A0/ft measurement.
  ac.vinp->set_ac_value({0.5, 0.0});
  ac.vinn->set_ac_value({-0.5, 0.0});
  ac_session_.stamp(ac.netlist, op.solution, conditions);
  const sim::GainBandwidth gb =
      sim::measure_gain_bandwidth(ac_session_, ac.out, kFtLow, kFtHigh,
                                  ctx.ft_valid ? &ctx.ft_bracket : nullptr);
  out.a0_db = gb.a0_db;
  out.ft_mhz = gb.ft_found ? gb.ft_hz / 1e6 : 0.0;

  // Common-mode excitation for CMRR: only the excitation vector changed,
  // but a re-stamp is one device sweep -- far cheaper than a solve.
  ac.vinp->set_ac_value({1.0, 0.0});
  ac.vinn->set_ac_value({1.0, 0.0});
  ac_session_.stamp(ac.netlist, op.solution, conditions);
  const double acm_db = sim::to_db(ac_session_.node_voltage(1.0, ac.out));
  out.cmrr_db = out.a0_db - acm_db;

  // --- unity-gain transient bench: positive slew rate -------------------
  Bench& sr = *sr_bench_;
  apply(sr, d, s, theta);
  const double vcm = 0.5 * theta[1];
  sr.vinp->set_dc_value(vcm);
  sim::DcOptions sr_dc;
  sr_dc.solver = options_.solver;
  sr_dc.workspace = &newton_sr_;
  sim::DcResult sr_op = sim::solve_dc(
      sr.netlist, conditions, sr_dc, ctx.sr_converged ? &ctx.op_sr : nullptr);
  if (!sr_op.converged) return out;

  const double step = options_.sr_step;
  sr.vinp->set_waveform([vcm, step](double t) {
    return t <= 0.0 ? vcm : vcm + step;
  });
  sim::TranOptions tran;
  tran.t_stop = options_.sr_t_stop;
  tran.dt = options_.sr_dt;
  tran.newton.solver = options_.solver;
  tran.newton.workspace = &newton_sr_;
  tran.seed_trajectory = ctx.traj_valid ? &ctx.sr_traj : nullptr;
  const sim::TranResult tr =
      sim::solve_transient(sr.netlist, sr_op.solution, conditions, tran);
  sr.vinp->clear_waveform();
  if (!tr.converged) return out;
  out.sr_v_per_us = 1e-6 * slew_from_step(tr.time, tr.node_voltage(sr.out));

  out.valid = true;
  return out;
}

FoldedCascode::Measurements FoldedCascode::measure(const Vector& d,
                                                   const Vector& s,
                                                   const Vector& theta) {
  DesignContext& ctx = design_context(d, theta);
  ensure_ft_section(ctx, d, theta);  // builds the AC section too
  ensure_sr_section(ctx, d, theta);
  return measure_with_context(ctx, d, s, theta);
}

namespace {
void pack_performances(const FoldedCascode::Measurements& m, double* out) {
  if (!m.valid) {
    // Penalty values: fail every specification decisively but finitely.
    out[0] = -20.0;  // A0 [dB]
    out[1] = 0.0;    // ft [MHz]
    out[2] = 0.0;    // CMRR [dB]
    out[3] = 0.0;    // SR [V/us]
    out[4] = 10.0;   // Power [mW]
    return;
  }
  out[0] = m.a0_db;
  out[1] = m.ft_mhz;
  out[2] = m.cmrr_db;
  out[3] = m.sr_v_per_us;
  out[4] = m.power_mw;
}
}  // namespace

linalg::PerfVec FoldedCascode::evaluate(const linalg::DesignVec& d,
                                        const linalg::StatPhysVec& s,
                                        const linalg::OperatingVec& theta) {
  linalg::PerfVec out(5);
  // Unwrap once: bench internals are untyped numeric code.
  pack_performances(
      measure(d.raw(), s.raw(), theta.raw()),  // space-ok: model boundary
      &out[0]);
  return out;
}

void FoldedCascode::evaluate_batch(const linalg::DesignVec& d_tagged,
                                   linalg::StatPhysBlock s_tagged,
                                   const linalg::OperatingVec& theta_tagged,
                                   linalg::PerfBlockView out_tagged) {
  // Unwrap once at the model boundary; internals are untyped.
  const Vector& d = d_tagged.raw();                // space-ok: model boundary
  const Vector& theta = theta_tagged.raw();        // space-ok: model boundary
  linalg::ConstMatrixView s_block = s_tagged.raw();  // space-ok: model boundary
  linalg::MatrixView out = out_tagged.raw();         // space-ok: model boundary
  if (out.rows() != s_block.rows() || out.cols() != num_performances())
    throw std::invalid_argument(
        "FoldedCascode::evaluate_batch: out shape mismatch");
  // Hoist the nominal solves (bias point, ft bracket, slew trajectory) out
  // of the sample loop; every row then runs the same per-sample code as
  // evaluate(), so the results are bitwise-identical to the scalar path.
  DesignContext& ctx = design_context(d, theta);
  ensure_ft_section(ctx, d, theta);
  ensure_sr_section(ctx, d, theta);
  if (batch_s_.size() != s_block.cols()) batch_s_ = Vector(s_block.cols());
  for (std::size_t j = 0; j < s_block.rows(); ++j) {
    const double* row = s_block.row(j);
    for (std::size_t i = 0; i < batch_s_.size(); ++i) batch_s_[i] = row[i];
    pack_performances(measure_with_context(ctx, d, batch_s_, theta),
                      out.row(j));
  }
}

Vector FoldedCascode::saturation_margins(const Vector& d) {
  const Vector s0(Stats::kCount);
  Vector theta{options_.process.envelope.temp_nom_k,
               options_.process.envelope.vdd_nom};
  DesignContext& ctx = design_context(d, theta);
  ensure_ac_section(ctx, d, theta);
  Vector margins(11);
  if (!ctx.ac_converged) {
    margins.fill(-1.0);
    return margins;
  }
  // The constraint point IS the context's nominal operating point: only
  // the device state needs re-binding, no extra DC solve.
  Bench& ac = *ac_bench_;
  apply(ac, d, s0, theta);
  const Conditions conditions{theta[0]};
  for (std::size_t i = 0; i < 11; ++i) {
    const Mosfet* mos = ac.signal[i];
    const auto voltage = [&](NodeId n) {
      return n == circuit::kGround ? 0.0 : ctx.op_ac[n - 1];
    };
    const circuit::MosEval eval = mos->evaluate_at(
        voltage(mos->drain()), voltage(mos->gate()), voltage(mos->source()),
        voltage(mos->bulk()), conditions.temperature_k);
    const double p = mos->type() == MosType::kNmos ? 1.0 : -1.0;
    const double vds = p * (voltage(mos->drain()) - voltage(mos->source()));
    margins[i] = vds - eval.vdsat - options_.sat_margin;
  }
  return margins;
}

Vector FoldedCascode::constraints(const linalg::DesignVec& d) {
  return saturation_margins(d.raw());  // space-ok: untyped model-detail helper
}

std::unique_ptr<core::PerformanceModel> FoldedCascode::clone() const {
  return std::make_unique<FoldedCascode>(options_);
}

std::vector<std::string> FoldedCascode::constraint_names() const {
  return {"sat(M0)", "sat(M1)", "sat(M2)", "sat(M3)",  "sat(M4)", "sat(M5)",
          "sat(M6)", "sat(M7)", "sat(M8)", "sat(M9)", "sat(M10)"};
}

// ------------------------------------------------------------ problem glue --

std::vector<std::string> FoldedCascode::performance_names() {
  return {"A0", "ft", "CMRR", "SRp", "Power"};
}

std::vector<std::string> FoldedCascode::statistical_names() {
  std::vector<std::string> names = {"dvthn_g", "dvthp_g", "dkpn_g", "dkpp_g"};
  for (int i = 1; i <= 10; ++i)
    names.push_back("dvth_M" + std::to_string(i));
  return names;
}

std::string FoldedCascode::pair_label(std::size_t stat_k, std::size_t stat_l) {
  const std::size_t lo = std::min(stat_k, stat_l);
  const std::size_t hi = std::max(stat_k, stat_l);
  if (lo < Stats::kLocalFirst) return {};
  const std::size_t a = lo - Stats::kLocalFirst;  // 0 = M1
  const std::size_t b = hi - Stats::kLocalFirst;
  if (a == 0 && b == 1) return "M1/M2 (input pair)";
  if (a == 2 && b == 3) return "M3/M4 (PMOS current sources)";
  if (a == 4 && b == 5) return "M5/M6 (PMOS cascodes)";
  if (a == 6 && b == 7) return "M7/M8 (NMOS cascodes)";
  if (a == 8 && b == 9) return "M9/M10 (mirror pair)";
  return {};
}

linalg::Vector FoldedCascode::initial_design() {
  Vector d(Design::kCount);
  d[Design::kWIn] = 28e-6;
  d[Design::kWTail] = 24e-6;
  d[Design::kWSrc] = 32e-6;
  d[Design::kWPcas] = 40e-6;
  d[Design::kWNcas] = 40e-6;
  d[Design::kWMir] = 40e-6;
  d[Design::kIref] = 50e-6;
  return d;
}

core::YieldProblem FoldedCascode::make_problem() {
  return make_problem(Options());
}

core::YieldProblem FoldedCascode::make_problem(Options options) {
  core::YieldProblem problem;
  const Process& process = options.process;
  const double length = options.length;
  problem.model = std::make_shared<FoldedCascode>(options);

  // Specifications: paper-style set (Table 1) with bounds calibrated to
  // this process so that the initial design reproduces the paper's
  // pass/fail signature (ft and CMRR fail, SR marginal, A0/power pass).
  problem.specs = {
      {"A0", core::SpecKind::kLowerBound, 66.0, "dB", 1.0},
      {"ft", core::SpecKind::kLowerBound, 40.0, "MHz", 1.0},
      {"CMRR", core::SpecKind::kLowerBound, 80.0, "dB", 1.0},
      {"SRp", core::SpecKind::kLowerBound, 29.8, "V/us", 0.5},
      {"Power", core::SpecKind::kUpperBound, 2.0, "mW", 0.05},
  };

  problem.design.names = {"w_in", "w_tail", "w_src", "w_pcas",
                          "w_ncas", "w_mir", "iref"};
  // The input pair and the current budget are capped (input capacitance /
  // power-frame arguments), so the optimizer has to combine several levers:
  // gain via w_in, speed via bias current, CMRR variance via mirror/source
  // area (the Pelgrom C(d) mechanism).
  problem.design.lower = Vector{8e-6, 8e-6, 8e-6, 8e-6, 8e-6, 8e-6, 20e-6};
  problem.design.upper =
      Vector{80e-6, 120e-6, 300e-6, 300e-6, 300e-6, 300e-6, 100e-6};
  problem.design.nominal = initial_design();

  problem.operating.names = {"temp", "vdd"};
  problem.operating.lower = Vector{273.15, process.envelope.vdd_min};
  problem.operating.upper = Vector{358.15, process.envelope.vdd_max};
  problem.operating.nominal =
      Vector{process.envelope.temp_nom_k, process.envelope.vdd_nom};

  // Statistical model: 4 globals (correlated gain factors) + 10 Pelgrom
  // locals whose sigma depends on the *current* width -- the C(d)
  // dependence of paper Sec. 4.
  auto& cov = problem.statistical;
  cov.add(stats::StatParam::global("dvthn_g", 0.0,
                                   process.statistics.sigma_vth_global));
  cov.add(stats::StatParam::global("dvthp_g", 0.0,
                                   process.statistics.sigma_vth_global));
  const std::size_t kpn_index = cov.add(stats::StatParam::global(
      "dkpn_g", 0.0, process.statistics.sigma_kp_global));
  const std::size_t kpp_index = cov.add(stats::StatParam::global(
      "dkpp_g", 0.0, process.statistics.sigma_kp_global));
  cov.set_correlation(kpn_index, kpp_index, process.statistics.rho_kp);

  struct LocalSpec {
    const char* name;
    std::size_t width_index;
    bool pmos;
  };
  const LocalSpec locals[] = {
      {"dvth_M1", Design::kWIn, false},   {"dvth_M2", Design::kWIn, false},
      {"dvth_M3", Design::kWSrc, true},   {"dvth_M4", Design::kWSrc, true},
      {"dvth_M5", Design::kWPcas, true},  {"dvth_M6", Design::kWPcas, true},
      {"dvth_M7", Design::kWNcas, false}, {"dvth_M8", Design::kWNcas, false},
      {"dvth_M9", Design::kWMir, false},  {"dvth_M10", Design::kWMir, false},
  };
  for (const LocalSpec& local : locals) {
    const double avt = local.pmos ? process.statistics.avt_p
                                  : process.statistics.avt_n;
    stats::StatParam param;
    param.name = local.name;
    param.nominal = 0.0;
    param.sigma = [avt, length,
                   index = local.width_index](const linalg::DesignVec& d) {
      return avt / std::sqrt(2.0 * d[index] * length);
    };
    cov.add(std::move(param));
  }

  problem.validate();
  return problem;
}

}  // namespace mayo::circuits
