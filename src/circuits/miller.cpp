#include "circuits/miller.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "circuit/netlist.hpp"
#include "core/probe_cache.hpp"
#include "obs/obs.hpp"
#include "sim/dc.hpp"
#include "sim/measure.hpp"
#include "sim/transient.hpp"

namespace mayo::circuits {

using circuit::Capacitor;
using circuit::Conditions;
using circuit::CurrentSource;
using circuit::MosGeometry;
using circuit::Mosfet;
using circuit::MosType;
using circuit::Netlist;
using circuit::NodeId;
using circuit::Resistor;
using circuit::VoltageSource;
using linalg::Vector;

using Design = MillerDesign;
using Stats = MillerStats;

struct Miller::Bench {
  Netlist netlist;
  bool unity = false;

  // Signal transistors M1..M7 in constraint order.
  std::array<Mosfet*, 7> signal{};
  Mosfet* mb = nullptr;

  VoltageSource* vdd = nullptr;
  VoltageSource* vinp = nullptr;
  VoltageSource* vinn = nullptr;  // null in the unity-gain bench
  CurrentSource* iref = nullptr;
  Capacitor* cc = nullptr;
  NodeId out = circuit::kGround;
};

// Per-(d, theta) reusable results, all computed at the nominal statistical
// point with cold solves (pure function of (d, theta)); see the folded
// cascode for the rationale.
struct Miller::DesignContext {
  std::vector<std::uint64_t> key;  ///< raw bits of (d, theta)

  bool ac_done = false;
  bool ac_converged = false;
  Vector op_ac;

  bool ft_done = false;
  bool ft_valid = false;
  sim::FtBracket ft_bracket;

  bool sr_done = false;
  bool sr_converged = false;
  Vector op_sr;
  bool traj_valid = false;
  std::vector<Vector> sr_traj;
};

namespace {
// AC sweep bounds of the ft measurement (two-stage opamp: crossing sits in
// the low-MHz range, 1 GHz is ample headroom).
constexpr double kFtLow = 1.0;
constexpr double kFtHigh = 1e9;
constexpr double kFtWiden = 1.6;
constexpr std::size_t kContextCapacity = 16;
}  // namespace

std::unique_ptr<Miller::Bench> Miller::build_bench(const Options& opt,
                                                   bool unity) {
  auto bench = std::make_unique<Miller::Bench>();
  bench->unity = unity;
  Netlist& nl = bench->netlist;

  const NodeId vdd = nl.add_node("vdd");
  const NodeId inp = nl.add_node("inp");
  const NodeId out = nl.add_node("out");
  const NodeId inn = unity ? out : nl.add_node("inn");
  const NodeId tail = nl.add_node("tail");
  const NodeId x1 = nl.add_node("x1");   // mirror diode side
  const NodeId x2 = nl.add_node("x2");   // first-stage output
  const NodeId xc = nl.add_node("xc");   // Rz/Cc joint
  const NodeId bn1 = nl.add_node("bn1");
  bench->out = out;

  const auto& proc_n = opt.process.nmos;
  const auto& proc_p = opt.process.pmos;
  const MosGeometry bias_geom{opt.bias_width, opt.length};
  const MosGeometry default_geom{20e-6, opt.length};

  bench->vdd = &nl.add<VoltageSource>("Vdd", vdd, circuit::kGround, 5.0);
  bench->vinp = &nl.add<VoltageSource>("Vinp", inp, circuit::kGround, 2.5);
  if (!unity) {
    const NodeId fb = nl.add_node("fb");
    bench->vinn = &nl.add<VoltageSource>("Vinn", inn, fb, 0.0);
    nl.add<Resistor>("Rfb", out, fb, 1e9);
    nl.add<Capacitor>("Cfb", fb, circuit::kGround, 1.0);
  }

  bench->iref = &nl.add<CurrentSource>("Iref", vdd, bn1, 20e-6);
  bench->mb = &nl.add<Mosfet>("MB", MosType::kNmos, bn1, bn1, circuit::kGround,
                              circuit::kGround, proc_n, bias_geom);

  // First stage: M1 (inn) diode side, M2 (inp) output side, PMOS mirror.
  bench->signal[0] = &nl.add<Mosfet>("M1", MosType::kNmos, x1, inn, tail,
                                     circuit::kGround, proc_n, default_geom);
  bench->signal[1] = &nl.add<Mosfet>("M2", MosType::kNmos, x2, inp, tail,
                                     circuit::kGround, proc_n, default_geom);
  bench->signal[2] = &nl.add<Mosfet>("M3", MosType::kPmos, x1, x1, vdd, vdd,
                                     proc_p, default_geom);
  bench->signal[3] = &nl.add<Mosfet>("M4", MosType::kPmos, x2, x1, vdd, vdd,
                                     proc_p, default_geom);
  bench->signal[4] = &nl.add<Mosfet>("M5", MosType::kNmos, tail, bn1,
                                     circuit::kGround, circuit::kGround,
                                     proc_n, default_geom);
  // Second stage.
  bench->signal[5] = &nl.add<Mosfet>("M6", MosType::kPmos, out, x2, vdd, vdd,
                                     proc_p, default_geom);
  bench->signal[6] = &nl.add<Mosfet>("M7", MosType::kNmos, out, bn1,
                                     circuit::kGround, circuit::kGround,
                                     proc_n, default_geom);

  // Compensation and load.
  nl.add<Resistor>("Rz", x2, xc, opt.rz);
  bench->cc = &nl.add<Capacitor>("Cc", xc, out, 20e-12);
  nl.add<Capacitor>("CL", out, circuit::kGround, opt.load_cap);
  return bench;
}

Miller::Miller() : Miller(Options()) {}

Miller::Miller(Options options)
    : options_(std::move(options)),
      ac_bench_(build_bench(options_, /*unity=*/false)),
      sr_bench_(build_bench(options_, /*unity=*/true)) {
  ac_session_.set_solver(options_.solver);
}

Miller::~Miller() = default;

void Miller::apply(Bench& bench, const Vector& d, const Vector& s,
                   const Vector& theta) const {
  if (d.size() != Design::kCount)
    throw std::invalid_argument("Miller: design vector size mismatch");
  if (s.size() != Stats::kCount)
    throw std::invalid_argument("Miller: statistical vector size mismatch");
  if (theta.size() != 2)
    throw std::invalid_argument("Miller: operating vector size mismatch");

  const double l = options_.length;
  const std::array<double, 7> widths = {
      d[Design::kWIn],  d[Design::kWIn],   d[Design::kWLoad],
      d[Design::kWLoad], d[Design::kWTail], d[Design::kWP2],
      d[Design::kWN2]};

  circuit::MosVariation var_n{s[Stats::kDvthnGlobal],
                              1.0 + s[Stats::kDkpnGlobal]};
  circuit::MosVariation var_p{s[Stats::kDvthpGlobal],
                              1.0 + s[Stats::kDkppGlobal]};

  for (std::size_t i = 0; i < 7; ++i) {
    Mosfet* mos = bench.signal[i];
    mos->set_geometry({widths[i], l});
    mos->set_variation(mos->type() == MosType::kPmos ? var_p : var_n);
  }
  bench.mb->set_variation(var_n);

  const double vdd = theta[1];
  bench.vdd->set_dc_value(vdd);
  bench.vinp->set_dc_value(0.5 * vdd);
  bench.iref->set_dc_value(d[Design::kIref]);
  bench.cc->set_capacitance(d[Design::kCc]);
}

Miller::DesignContext& Miller::design_context(const Vector& d,
                                              const Vector& theta) {
  context_key_.clear();
  core::ProbeCache::append_bits(context_key_, d);
  core::ProbeCache::append_bits(context_key_, theta);
  obs::CacheCounters& stats = obs::registry().counters.design_context;
  for (auto& ctx : contexts_) {
    if (ctx->key == context_key_) {
      stats.hits.add();
      return *ctx;
    }
  }
  stats.misses.add();
  if (contexts_.size() >= kContextCapacity) {
    contexts_.erase(contexts_.begin());
    stats.evictions.add();
  }
  contexts_.push_back(std::make_unique<DesignContext>());
  contexts_.back()->key = context_key_;
  return *contexts_.back();
}

void Miller::ensure_ac_section(DesignContext& ctx, const Vector& d,
                               const Vector& theta) {
  if (ctx.ac_done) return;
  ctx.ac_done = true;
  Bench& ac = *ac_bench_;
  const Vector s0(Stats::kCount);
  apply(ac, d, s0, theta);
  const Conditions conditions{theta[0]};
  sim::DcOptions dc;
  dc.solver = options_.solver;
  dc.workspace = &newton_ac_;
  const sim::DcResult op = sim::solve_dc(ac.netlist, conditions, dc);
  ctx.ac_converged = op.converged;
  if (op.converged) ctx.op_ac = op.solution;
}

void Miller::ensure_ft_section(DesignContext& ctx, const Vector& d,
                               const Vector& theta) {
  if (ctx.ft_done) return;
  ensure_ac_section(ctx, d, theta);
  ctx.ft_done = true;
  if (!ctx.ac_converged) return;
  Bench& ac = *ac_bench_;
  const Vector s0(Stats::kCount);
  apply(ac, d, s0, theta);
  const Conditions conditions{theta[0]};
  ac.vinp->set_ac_value({0.5, 0.0});
  ac.vinn->set_ac_value({-0.5, 0.0});
  ac_session_.stamp(ac.netlist, ctx.op_ac, conditions);
  const sim::GainBandwidth gb =
      sim::measure_gain_bandwidth(ac_session_, ac.out, kFtLow, kFtHigh);
  if (!gb.ft_found) return;
  ctx.ft_bracket.f_lo = std::max(kFtLow, gb.ft_hz / kFtWiden);
  ctx.ft_bracket.f_hi = std::min(kFtHigh, gb.ft_hz * kFtWiden);
  ctx.ft_valid = ctx.ft_bracket.f_hi > ctx.ft_bracket.f_lo;
}

void Miller::ensure_sr_section(DesignContext& ctx, const Vector& d,
                               const Vector& theta) {
  if (ctx.sr_done) return;
  ctx.sr_done = true;
  Bench& sr = *sr_bench_;
  const Vector s0(Stats::kCount);
  apply(sr, d, s0, theta);
  const double vcm = 0.5 * theta[1];
  sr.vinp->set_dc_value(vcm);
  const Conditions conditions{theta[0]};
  sim::DcOptions dc;
  dc.solver = options_.solver;
  dc.workspace = &newton_sr_;
  const sim::DcResult op = sim::solve_dc(sr.netlist, conditions, dc);
  ctx.sr_converged = op.converged;
  if (!op.converged) return;
  ctx.op_sr = op.solution;
  const double step = options_.sr_step;
  sr.vinp->set_waveform([vcm, step](double t) {
    return t <= 0.0 ? vcm : vcm + step;
  });
  sim::TranOptions tran;
  tran.t_stop = options_.sr_t_stop;
  tran.dt = options_.sr_dt;
  tran.newton.solver = options_.solver;
  tran.newton.workspace = &newton_sr_;
  const sim::TranResult tr =
      sim::solve_transient(sr.netlist, op.solution, conditions, tran);
  sr.vinp->clear_waveform();
  if (tr.converged) {
    ctx.sr_traj = tr.solutions;
    ctx.traj_valid = true;
  }
}

Miller::Measurements Miller::measure_with_context(DesignContext& ctx,
                                                  const Vector& d,
                                                  const Vector& s,
                                                  const Vector& theta) {
  Measurements out;
  Conditions conditions{theta[0]};

  Bench& ac = *ac_bench_;
  apply(ac, d, s, theta);
  sim::DcOptions ac_dc;
  ac_dc.solver = options_.solver;
  ac_dc.workspace = &newton_ac_;
  sim::DcResult op = sim::solve_dc(
      ac.netlist, conditions, ac_dc, ctx.ac_converged ? &ctx.op_ac : nullptr);
  if (!op.converged) return out;

  out.power_mw =
      1e3 * sim::measure_supply_power(ac.netlist, op.solution, {ac.vdd});

  // One session stamp serves the whole A0/ft/PM measurement.
  ac.vinp->set_ac_value({0.5, 0.0});
  ac.vinn->set_ac_value({-0.5, 0.0});
  ac_session_.stamp(ac.netlist, op.solution, conditions);
  const sim::GainBandwidth gb =
      sim::measure_gain_bandwidth(ac_session_, ac.out, kFtLow, kFtHigh,
                                  ctx.ft_valid ? &ctx.ft_bracket : nullptr);
  out.a0_db = gb.a0_db;
  out.ft_mhz = gb.ft_found ? gb.ft_hz / 1e6 : 0.0;
  out.pm_deg = gb.ft_found ? gb.phase_margin_deg : 0.0;

  Bench& sr = *sr_bench_;
  apply(sr, d, s, theta);
  const double vcm = 0.5 * theta[1];
  sr.vinp->set_dc_value(vcm);
  sim::DcOptions sr_dc;
  sr_dc.solver = options_.solver;
  sr_dc.workspace = &newton_sr_;
  sim::DcResult sr_op = sim::solve_dc(
      sr.netlist, conditions, sr_dc, ctx.sr_converged ? &ctx.op_sr : nullptr);
  if (!sr_op.converged) return out;

  const double step = options_.sr_step;
  sr.vinp->set_waveform([vcm, step](double t) {
    return t <= 0.0 ? vcm : vcm + step;
  });
  sim::TranOptions tran;
  tran.t_stop = options_.sr_t_stop;
  tran.dt = options_.sr_dt;
  tran.newton.solver = options_.solver;
  tran.newton.workspace = &newton_sr_;
  tran.seed_trajectory = ctx.traj_valid ? &ctx.sr_traj : nullptr;
  const sim::TranResult tr =
      sim::solve_transient(sr.netlist, sr_op.solution, conditions, tran);
  sr.vinp->clear_waveform();
  if (!tr.converged) return out;

  // 10%-90% rise-time based slew estimate.
  const std::vector<double> v = tr.node_voltage(sr.out);
  const double delta = v.back() - v.front();
  double slew = 0.0;
  if (std::abs(delta) > 1e-6) {
    const double v10 = v.front() + 0.1 * delta;
    const double v90 = v.front() + 0.9 * delta;
    double t10 = -1.0;
    double t90 = -1.0;
    for (std::size_t k = 1; k < v.size(); ++k) {
      if (t10 < 0.0 && v[k - 1] < v10 && v[k] >= v10) {
        const double f = (v10 - v[k - 1]) / (v[k] - v[k - 1]);
        t10 = tr.time[k - 1] + f * (tr.time[k] - tr.time[k - 1]);
      }
      if (t90 < 0.0 && v[k - 1] < v90 && v[k] >= v90) {
        const double f = (v90 - v[k - 1]) / (v[k] - v[k - 1]);
        t90 = tr.time[k - 1] + f * (tr.time[k] - tr.time[k - 1]);
      }
    }
    if (t10 >= 0.0 && t90 > t10) slew = 0.8 * std::abs(delta) / (t90 - t10);
  }
  out.sr_v_per_us = 1e-6 * slew;

  out.valid = true;
  return out;
}

Miller::Measurements Miller::measure(const Vector& d, const Vector& s,
                                     const Vector& theta) {
  DesignContext& ctx = design_context(d, theta);
  ensure_ft_section(ctx, d, theta);  // builds the AC section too
  ensure_sr_section(ctx, d, theta);
  return measure_with_context(ctx, d, s, theta);
}

namespace {
void pack_performances(const Miller::Measurements& m, double* out) {
  if (!m.valid) {
    out[0] = -20.0;
    out[1] = 0.0;
    out[2] = 0.0;
    out[3] = 0.0;
    out[4] = 10.0;
    return;
  }
  out[0] = m.a0_db;
  out[1] = m.ft_mhz;
  out[2] = m.pm_deg;
  out[3] = m.sr_v_per_us;
  out[4] = m.power_mw;
}
}  // namespace

linalg::PerfVec Miller::evaluate(const linalg::DesignVec& d,
                                 const linalg::StatPhysVec& s,
                                 const linalg::OperatingVec& theta) {
  linalg::PerfVec out(5);
  // Unwrap once: bench internals are untyped numeric code.
  pack_performances(
      measure(d.raw(), s.raw(), theta.raw()),  // space-ok: model boundary
      &out[0]);
  return out;
}

void Miller::evaluate_batch(const linalg::DesignVec& d_tagged,
                            linalg::StatPhysBlock s_tagged,
                            const linalg::OperatingVec& theta_tagged,
                            linalg::PerfBlockView out_tagged) {
  // Unwrap once at the model boundary; internals are untyped.
  const Vector& d = d_tagged.raw();                // space-ok: model boundary
  const Vector& theta = theta_tagged.raw();        // space-ok: model boundary
  linalg::ConstMatrixView s_block = s_tagged.raw();  // space-ok: model boundary
  linalg::MatrixView out = out_tagged.raw();         // space-ok: model boundary
  if (out.rows() != s_block.rows() || out.cols() != num_performances())
    throw std::invalid_argument("Miller::evaluate_batch: out shape mismatch");
  DesignContext& ctx = design_context(d, theta);
  ensure_ft_section(ctx, d, theta);
  ensure_sr_section(ctx, d, theta);
  if (batch_s_.size() != s_block.cols()) batch_s_ = Vector(s_block.cols());
  for (std::size_t j = 0; j < s_block.rows(); ++j) {
    const double* row = s_block.row(j);
    for (std::size_t i = 0; i < batch_s_.size(); ++i) batch_s_[i] = row[i];
    pack_performances(measure_with_context(ctx, d, batch_s_, theta),
                      out.row(j));
  }
}

Vector Miller::constraints(const linalg::DesignVec& d_tagged) {
  const Vector& d = d_tagged.raw();  // space-ok: untyped bench internals
  const Vector s0(Stats::kCount);
  Vector theta{options_.process.envelope.temp_nom_k,
               options_.process.envelope.vdd_nom};
  DesignContext& ctx = design_context(d, theta);
  ensure_ac_section(ctx, d, theta);
  Vector margins(7);
  if (!ctx.ac_converged) {
    margins.fill(-1.0);
    return margins;
  }
  Bench& ac = *ac_bench_;
  apply(ac, d, s0, theta);
  const Conditions conditions{theta[0]};
  for (std::size_t i = 0; i < 7; ++i) {
    const Mosfet* mos = ac.signal[i];
    const auto voltage = [&](NodeId n) {
      return n == circuit::kGround ? 0.0 : ctx.op_ac[n - 1];
    };
    const circuit::MosEval eval = mos->evaluate_at(
        voltage(mos->drain()), voltage(mos->gate()), voltage(mos->source()),
        voltage(mos->bulk()), conditions.temperature_k);
    const double p = mos->type() == MosType::kNmos ? 1.0 : -1.0;
    const double vds = p * (voltage(mos->drain()) - voltage(mos->source()));
    margins[i] = vds - eval.vdsat - options_.sat_margin;
  }
  return margins;
}

std::unique_ptr<core::PerformanceModel> Miller::clone() const {
  return std::make_unique<Miller>(options_);
}

std::vector<std::string> Miller::constraint_names() const {
  return {"sat(M1)", "sat(M2)", "sat(M3)", "sat(M4)",
          "sat(M5)", "sat(M6)", "sat(M7)"};
}

std::vector<std::string> Miller::performance_names() {
  return {"A0", "ft", "PM", "SRp", "Power"};
}

std::vector<std::string> Miller::statistical_names() {
  return {"dvthn_g", "dvthp_g", "dkpn_g", "dkpp_g"};
}

Vector Miller::initial_design() {
  Vector d(Design::kCount);
  d[Design::kWIn] = 50e-6;
  d[Design::kWLoad] = 40e-6;
  d[Design::kWTail] = 58e-6;
  d[Design::kWP2] = 400e-6;
  d[Design::kWN2] = 100e-6;
  d[Design::kIref] = 20e-6;
  d[Design::kCc] = 20e-12;
  return d;
}

core::YieldProblem Miller::make_problem() { return make_problem(Options()); }

core::YieldProblem Miller::make_problem(Options options) {
  core::YieldProblem problem;
  const Process& process = options.process;
  problem.model = std::make_shared<Miller>(options);

  // Bounds calibrated so the initial design starts at a moderate yield with
  // PM and SR marginal (paper Table 6 signature: 33.7% initial yield).
  problem.specs = {
      {"A0", core::SpecKind::kLowerBound, 92.4, "dB", 0.5},
      {"ft", core::SpecKind::kLowerBound, 1.3, "MHz", 0.1},
      {"PM", core::SpecKind::kLowerBound, 67.3, "deg", 0.5},
      {"SRp", core::SpecKind::kLowerBound, 2.505, "V/us", 0.05},
      {"Power", core::SpecKind::kUpperBound, 1.45, "mW", 0.02},
  };

  problem.design.names = {"w_in", "w_load", "w_tail", "w_p2",
                          "w_n2", "iref", "cc"};
  problem.design.lower =
      Vector{10e-6, 10e-6, 10e-6, 50e-6, 20e-6, 5e-6, 5e-12};
  problem.design.upper =
      Vector{200e-6, 200e-6, 200e-6, 800e-6, 300e-6, 60e-6, 60e-12};
  problem.design.nominal = initial_design();

  problem.operating.names = {"temp", "vdd"};
  problem.operating.lower = Vector{273.15, process.envelope.vdd_min};
  problem.operating.upper = Vector{358.15, process.envelope.vdd_max};
  problem.operating.nominal =
      Vector{process.envelope.temp_nom_k, process.envelope.vdd_nom};

  auto& cov = problem.statistical;
  cov.add(stats::StatParam::global("dvthn_g", 0.0,
                                   process.statistics.sigma_vth_global));
  cov.add(stats::StatParam::global("dvthp_g", 0.0,
                                   process.statistics.sigma_vth_global));
  const std::size_t kpn_index = cov.add(stats::StatParam::global(
      "dkpn_g", 0.0, process.statistics.sigma_kp_global));
  const std::size_t kpp_index = cov.add(stats::StatParam::global(
      "dkpp_g", 0.0, process.statistics.sigma_kp_global));
  cov.set_correlation(kpn_index, kpp_index, process.statistics.rho_kp);

  problem.validate();
  return problem;
}

}  // namespace mayo::circuits
