// mayo/circuits -- folded-cascode operational amplifier (paper Fig. 7).
//
// NMOS input pair folded into a PMOS cascode with an NMOS cascode current
// mirror as load; biased from a single reference current through mirror
// diodes; cascode gates from supply-referenced voltage sources.  Two
// testbench netlists share the sizing:
//   * an open-loop AC bench with a DC-only feedback path (1 GOhm / 1 F:
//     closes the loop at DC so the operating point is biased, transparent
//     to every AC frequency of interest) measuring A0, f_t, CMRR, power;
//   * a unity-gain transient bench measuring the positive slew rate.
//
// Performances (in spec order): A0 [dB], f_t [MHz], CMRR [dB],
// SR+ [V/us], Power [mW].
//
// Statistical parameters (physical units):
//   [0] global NMOS Vth shift [V]      [1] global PMOS Vth shift [V]
//   [2] global NMOS gain-factor scale  [3] global PMOS gain-factor scale
//   [4..13] local Vth shifts of M1..M10 [V], Pelgrom sigma ~ 1/sqrt(2 W L)
//
// Design parameters: widths of the six matched groups plus the reference
// current.  Functional constraints: saturation margin >= margin_min for
// the eleven signal-path transistors.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "circuits/process.hpp"
#include "core/problem.hpp"
#include "linalg/system_matrix.hpp"
#include "sim/ac.hpp"
#include "sim/solver.hpp"

namespace mayo::circuits {

/// Indices into the design vector.
struct FoldedCascodeDesign {
  enum Index : std::size_t {
    kWIn = 0,   ///< input pair M1/M2 width
    kWTail,     ///< tail source M0 width
    kWSrc,      ///< PMOS current sources M3/M4 width
    kWPcas,     ///< PMOS cascodes M5/M6 width
    kWNcas,     ///< NMOS cascodes M7/M8 width
    kWMir,      ///< NMOS mirror M9/M10 width
    kIref,      ///< reference current [A]
    kCount
  };
};

/// Indices into the statistical vector.
struct FoldedCascodeStats {
  enum Index : std::size_t {
    kDvthnGlobal = 0,
    kDvthpGlobal,
    kDkpnGlobal,
    kDkppGlobal,
    kLocalFirst,               ///< local dVth of M1; M2..M10 follow
    kCount = kLocalFirst + 10
  };
};

class FoldedCascode final : public core::PerformanceModel {
 public:
  struct Options {
    Process process = default_process();
    double length = 1e-6;       ///< channel length of all signal devices [m]
    double bias_width = 20e-6;  ///< width of the bias diodes [m]
    double load_cap = 1.6e-12;  ///< output load [F]
    double vcasc_p = 1.8;       ///< PMOS cascode bias below VDD [V]
    double vcasc_n = 1.5;       ///< NMOS cascode bias above ground [V]
    double sat_margin = 0.05;   ///< required saturation margin [V]
    double sr_step = 0.5;       ///< input step of the slew bench [V]
    double sr_t_stop = 120e-9;  ///< transient duration [s]
    double sr_dt = 0.5e-9;      ///< transient step [s]
    /// Linear-solver backend selection for every bench solve (kAuto keeps
    /// this opamp-scale netlist on the dense fast path; tests force
    /// kSparse to pin dense/sparse equivalence).
    linalg::SolverOptions solver;
  };

  FoldedCascode();  ///< default options
  explicit FoldedCascode(Options options);
  ~FoldedCascode() override;

  // -- PerformanceModel ----------------------------------------------------
  std::size_t num_performances() const override { return 5; }
  std::size_t num_constraints() const override { return 11; }
  std::vector<std::string> constraint_names() const override;
  std::unique_ptr<core::PerformanceModel> clone() const override;
  linalg::PerfVec evaluate(const linalg::DesignVec& d,
                           const linalg::StatPhysVec& s,
                           const linalg::OperatingVec& theta) override;
  /// Native batch path: the per-(d, theta) nominal solves (bias point, ft
  /// bracket, slew trajectory) are built once and every sample row reuses
  /// them as warm starts.  Row results are bitwise-identical to evaluate()
  /// because both run the same per-sample code against the same context.
  void evaluate_batch(const linalg::DesignVec& d, linalg::StatPhysBlock s_block,
                      const linalg::OperatingVec& theta,
                      linalg::PerfBlockView out) override;
  linalg::Vector constraints(const linalg::DesignVec& d) override;

  /// Detailed measurement access for sweeps and figures.  Deliberately
  /// untyped (raw vectors): callers sweep arbitrary ad-hoc points.
  struct Measurements {
    double a0_db = 0.0;
    double ft_mhz = 0.0;
    double cmrr_db = 0.0;
    double sr_v_per_us = 0.0;
    double power_mw = 0.0;
    bool valid = false;  ///< false when the DC solve failed
  };
  Measurements measure(const linalg::Vector& d, const linalg::Vector& s,
                       const linalg::Vector& theta);

  /// Saturation margins (vds - vdsat - margin_min) of the 11 transistors at
  /// nominal statistics and operating conditions.
  linalg::Vector saturation_margins(const linalg::Vector& d);

  /// Performance names in spec order.
  static std::vector<std::string> performance_names();
  /// Names of the statistical parameters.
  static std::vector<std::string> statistical_names();
  /// Human-readable name of the matched pair of two local-parameter
  /// indices, e.g. "M1/M2 (input pair)"; empty if not a matched pair.
  static std::string pair_label(std::size_t stat_k, std::size_t stat_l);

  /// Builds the complete yield problem: this model, the paper-style spec
  /// set calibrated to the initial sizing, design/operating spaces and the
  /// covariance model with design-dependent Pelgrom locals.
  static core::YieldProblem make_problem();  ///< default options
  static core::YieldProblem make_problem(Options options);

  const Options& options() const { return options_; }
  /// The initial (paper-signature) sizing.
  static linalg::Vector initial_design();

 private:
  struct Bench;          // one netlist + device handles
  struct DesignContext;  // per-(d, theta) nominal solves shared by samples

  static std::unique_ptr<Bench> build_bench(const Options& options, bool unity);
  void apply(Bench& bench, const linalg::Vector& d, const linalg::Vector& s,
             const linalg::Vector& theta) const;
  /// Context for (d, theta), created empty on first use (FIFO-bounded
  /// cache).  Sections are filled lazily by the ensure_* helpers; all
  /// content is a pure function of (d, theta), so eviction can never
  /// change a result, only its cost.
  DesignContext& design_context(const linalg::Vector& d,
                                const linalg::Vector& theta);
  void ensure_ac_section(DesignContext& ctx, const linalg::Vector& d,
                         const linalg::Vector& theta);
  void ensure_ft_section(DesignContext& ctx, const linalg::Vector& d,
                         const linalg::Vector& theta);
  void ensure_sr_section(DesignContext& ctx, const linalg::Vector& d,
                         const linalg::Vector& theta);
  Measurements measure_with_context(DesignContext& ctx,
                                    const linalg::Vector& d,
                                    const linalg::Vector& s,
                                    const linalg::Vector& theta);

  Options options_;
  std::unique_ptr<Bench> ac_bench_;   ///< open-loop AC testbench
  std::unique_ptr<Bench> sr_bench_;   ///< unity-gain transient testbench
  std::vector<std::unique_ptr<DesignContext>> contexts_;  ///< FIFO cache
  std::vector<std::uint64_t> context_key_;  ///< key-building scratch
  linalg::Vector batch_s_;                  ///< row scratch for batches
  /// Reusable small-signal workspace.  Every use fully re-stamps it, so it
  /// carries cost (buffers, factors) but never results between calls.
  sim::AcSession ac_session_;
  /// Newton linear-system workspaces, one per bench (the benches differ
  /// in size; sharing one would thrash the sparse pattern and symbolic
  /// analysis on every alternation).  Like the session, they carry only
  /// cost between calls; clone() gives each parallel worker fresh ones.
  sim::LinearSystem newton_ac_;
  sim::LinearSystem newton_sr_;
};

}  // namespace mayo::circuits
