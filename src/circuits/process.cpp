#include "circuits/process.hpp"

namespace mayo::circuits {

Process default_process() {
  Process p;

  p.nmos.vth0 = 0.70;
  p.nmos.kp = 100e-6;
  p.nmos.lambda_l = 0.05e-6;
  p.nmos.gamma = 0.45;
  p.nmos.phi = 0.70;
  p.nmos.tox = 15e-9;
  p.nmos.cgso = 250e-12;
  p.nmos.cgdo = 250e-12;
  p.nmos.cj = 0.40e-3;
  p.nmos.ldiff = 1.5e-6;
  p.nmos.vth_tc = 2.0e-3;
  p.nmos.mu_exp = 1.5;
  p.nmos.tnom = 300.15;

  p.pmos = p.nmos;
  p.pmos.vth0 = 0.80;        // polarity-normalized magnitude
  p.pmos.kp = 35e-6;
  p.pmos.lambda_l = 0.06e-6;
  p.pmos.gamma = 0.40;

  return p;
}

}  // namespace mayo::circuits
