// mayo/circuits -- generic CMOS process used by the example circuits.
//
// Stand-in for the paper's industrial fabrication process: a 0.8 um-class
// 5 V CMOS with
//   * level-1 device parameters per flavour,
//   * global statistical parameters: threshold shifts and gain-factor
//     scalings per flavour (the gain factors of the two flavours are
//     correlated -- both depend on the shared oxide),
//   * Pelgrom coefficients for local (mismatch) variation,
//   * the operating envelope (temperature, supply).
#pragma once

#include "circuit/mos_model.hpp"

namespace mayo::circuits {

/// Statistical description of the process.
struct ProcessStatistics {
  double sigma_vth_global = 0.030;  ///< global Vth shift sigma [V], both flavours
  double sigma_kp_global = 0.04;    ///< global gain-factor scale sigma (relative)
  double rho_kp = 0.5;              ///< correlation of NMOS/PMOS gain factors
  double avt_n = 20e-9;             ///< Pelgrom A_VT for NMOS [V*m] (20 mV*um)
  double avt_p = 20e-9;             ///< Pelgrom A_VT for PMOS [V*m]
};

/// Operating envelope.
struct OperatingEnvelope {
  double temp_min_k = 233.15;   ///< -40 C
  double temp_max_k = 398.15;   ///< 125 C
  double temp_nom_k = 300.15;   ///< 27 C
  double vdd_min = 4.5;
  double vdd_max = 5.5;
  double vdd_nom = 5.0;
};

/// Full process handed to the testbenches.
struct Process {
  circuit::MosProcess nmos;
  circuit::MosProcess pmos;
  ProcessStatistics statistics;
  OperatingEnvelope envelope;
};

/// The default 0.8 um-class process of all examples and benches.
Process default_process();

}  // namespace mayo::circuits
